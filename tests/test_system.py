"""Integration tests for the full GPUSystem pipeline."""

import pytest

from repro.config import SystemConfig
from repro.core.policies import PAPER_POLICY_ORDER, PolicySpec
from repro.sim.system import GPUSystem
from repro.workloads import get_gpu_kernel, get_pim_kernel
from repro.workloads.synthetic import GPUKernelProfile, PIMStreamKernel


def tiny_config(num_vcs=1, **kwargs):
    defaults = dict(num_channels=4, num_sms=4, noc_queue_size=32)
    defaults.update(kwargs)
    return SystemConfig.scaled(**defaults).replace(num_virtual_channels=num_vcs)


def small_gpu(name="it-gpu", **kwargs):
    defaults = dict(accesses_per_warp=96, compute_per_phase=10)
    defaults.update(kwargs)
    return GPUKernelProfile(name=name, **defaults)


def small_pim(name="it-pim", **kwargs):
    defaults = dict(elements_per_warp=128)
    defaults.update(kwargs)
    return PIMStreamKernel(name=name, **defaults)


class TestStandalone:
    def test_gpu_kernel_completes(self):
        system = GPUSystem(tiny_config(), PolicySpec("FR-FCFS"))
        system.add_kernel(small_gpu(), num_sms=2)
        result = system.run(max_cycles=200_000)
        assert result.all_completed
        kernel = result.kernels[0]
        assert kernel.first_duration > 0
        assert kernel.requests_injected > 0
        assert kernel.mc_arrivals <= kernel.requests_injected  # L2 filters

    def test_pim_kernel_completes(self):
        system = GPUSystem(tiny_config(), PolicySpec("FR-FCFS"))
        system.add_kernel(small_pim(), num_sms=1)
        result = system.run(max_cycles=200_000)
        assert result.all_completed
        kernel = result.kernels[0]
        # PIM bypasses the L2 entirely: all injected requests reach the MC.
        assert kernel.mc_arrivals == kernel.requests_injected
        assert kernel.l2_accesses == 0

    def test_pim_blp_is_all_banks(self):
        system = GPUSystem(tiny_config(), PolicySpec("FR-FCFS"))
        system.add_kernel(small_pim(), num_sms=1)
        result = system.run(max_cycles=200_000)
        assert result.bank_level_parallelism == pytest.approx(16.0)

    def test_pim_rbhr_high(self):
        system = GPUSystem(tiny_config(), PolicySpec("FR-FCFS"))
        system.add_kernel(small_pim(), num_sms=1)
        result = system.run(max_cycles=200_000)
        assert result.kernels[0].row_buffer_hit_rate > 0.8

    def test_request_conservation(self):
        """injected == completed when the system drains."""
        system = GPUSystem(tiny_config(), PolicySpec("FR-FCFS"))
        system.add_kernel(small_gpu(), num_sms=2)
        system.run(max_cycles=200_000)
        assert all(v == 0 for v in system._kernel_inflight.values())


class TestCompetitive:
    def test_both_complete_with_looping(self):
        system = GPUSystem(tiny_config(), PolicySpec("F3FS"))
        system.add_kernel(small_gpu(), num_sms=2, loop=True)
        system.add_kernel(small_pim(), num_sms=1, loop=True)
        result = system.run(max_cycles=500_000)
        assert result.all_completed
        assert result.mode_switches > 0

    def test_contention_slows_gpu_kernel(self):
        alone = GPUSystem(tiny_config(), PolicySpec("FR-FCFS"))
        alone.add_kernel(small_gpu(l2_reuse=0.0), num_sms=2)
        alone_result = alone.run(max_cycles=500_000)

        contended = GPUSystem(tiny_config(), PolicySpec("FR-FCFS"))
        contended.add_kernel(small_gpu(l2_reuse=0.0), num_sms=2, loop=True)
        contended.add_kernel(small_pim(), num_sms=1, loop=True)
        contended_result = contended.run(max_cycles=500_000)

        assert (
            contended_result.kernels[0].first_duration
            > alone_result.kernels[0].first_duration
        )

    def test_vc2_improves_gpu_under_pim_flood(self):
        """The paper's headline: separate VCs restore MEM service."""
        durations = {}
        for vcs in (1, 2):
            system = GPUSystem(tiny_config(num_vcs=vcs), PolicySpec("MEM-First"))
            system.add_kernel(small_gpu(l2_reuse=0.0), num_sms=2, loop=True)
            system.add_kernel(small_pim(elements_per_warp=512), num_sms=1, loop=True)
            result = system.run(max_cycles=150_000)
            durations[vcs] = result.kernels[0].first_duration or result.cycles
        assert durations[2] < durations[1]

    @pytest.mark.parametrize("policy", PAPER_POLICY_ORDER)
    def test_all_policies_run_in_system(self, policy):
        from repro.experiments.figures import competitive_policy

        system = GPUSystem(tiny_config(num_vcs=2), competitive_policy(policy))
        system.add_kernel(small_gpu(), num_sms=2, loop=True)
        system.add_kernel(small_pim(), num_sms=1, loop=True)
        result = system.run(max_cycles=500_000)
        assert result.all_completed

    def test_same_trace_standalone_and_contended(self):
        """The GPU kernel injects identical traffic in both runs."""
        alone = GPUSystem(tiny_config(), PolicySpec("FR-FCFS"), seed=5)
        alone.add_kernel(small_gpu(), num_sms=2)
        a = alone.run(max_cycles=500_000)

        contended = GPUSystem(tiny_config(), PolicySpec("FR-FCFS"), seed=5)
        contended.add_kernel(small_gpu(), num_sms=2)
        contended.add_kernel(small_pim(), num_sms=1)
        b = contended.run(max_cycles=500_000)
        assert a.kernels[0].requests_injected == b.kernels[0].requests_injected

    def test_determinism(self):
        def run_once():
            system = GPUSystem(tiny_config(), PolicySpec("F3FS"), seed=9)
            system.add_kernel(small_gpu(), num_sms=2, loop=True)
            system.add_kernel(small_pim(), num_sms=1, loop=True)
            result = system.run(max_cycles=500_000)
            return (
                result.cycles,
                result.mode_switches,
                [k.first_duration for k in result.kernels.values()],
            )

        assert run_once() == run_once()


class TestValidation:
    def test_too_many_sms_rejected(self):
        system = GPUSystem(tiny_config(), PolicySpec("FCFS"))
        with pytest.raises(ValueError):
            system.add_kernel(small_gpu(), num_sms=99)

    def test_zero_sms_rejected(self):
        system = GPUSystem(tiny_config(), PolicySpec("FCFS"))
        with pytest.raises(ValueError):
            system.add_kernel(small_gpu(), num_sms=0)

    def test_run_without_kernels_rejected(self):
        with pytest.raises(ValueError):
            GPUSystem(tiny_config(), PolicySpec("FCFS")).run()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig.scaled(num_channels=3)
        with pytest.raises(ValueError):
            SystemConfig(num_virtual_channels=3)


class TestFunctional:
    def test_pim_vector_add_end_to_end(self):
        """Run a real PIM vector-add through the full system and check data."""
        from repro.pim.isa import PIMOpKind
        from repro.workloads.synthetic import PIMStreamKernel

        config = tiny_config()
        system = GPUSystem(config, PolicySpec("FCFS"), functional=True)
        spec = PIMStreamKernel(
            name="func-add",
            ops=((PIMOpKind.LOAD, 0), (PIMOpKind.ADD, 1), (PIMOpKind.STORE, 2)),
            elements_per_warp=8,
        )
        run = system.add_kernel(spec, num_sms=1)
        ctx_probe = None
        # Initialize vectors a (role 0) and b (role 1) on every channel/bank
        # at the locations the kernel's layout dictates.
        from repro.gpu.kernel import LaunchContext
        import numpy as np

        ctx_probe = LaunchContext(
            mapper=config.mapper,
            num_channels=config.num_channels,
            banks_per_channel=config.banks_per_channel,
            num_sms=1,
            warps_per_sm=config.warps_per_sm,
            rng=np.random.default_rng(0),
        )
        for channel in range(config.num_channels):
            for bank in range(config.banks_per_channel):
                for element in range(8):
                    row_a, col_a = spec.operand_location(ctx_probe, 0, element)
                    row_b, col_b = spec.operand_location(ctx_probe, 1, element)
                    system.store.write(channel, bank, row_a, col_a, 3.0)
                    system.store.write(channel, bank, row_b, col_b, 4.0)
        result = system.run(max_cycles=200_000)
        assert result.all_completed
        # Warps covered all four channels; role 2's locations hold a+b.
        for channel in range(config.num_channels):
            for bank in range(config.banks_per_channel):
                for element in range(8):
                    row_c, col_c = spec.operand_location(ctx_probe, 2, element)
                    assert system.store.read(channel, bank, row_c, col_c) == pytest.approx(7.0)
