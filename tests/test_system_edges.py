"""Targeted tests for less-traveled full-system paths."""

import pytest

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.sim.system import GPUSystem
from repro.workloads.synthetic import GPUKernelProfile


def run_system(config, spec, num_sms=2, max_cycles=400_000):
    system = GPUSystem(config, PolicySpec("FR-FCFS"))
    system.add_kernel(spec, num_sms=num_sms)
    result = system.run(max_cycles=max_cycles)
    assert result.all_completed
    return system, result


class ScriptedGPU(GPUKernelProfile):
    """Load a set, dirty it with stores, then evict it with a cold sweep."""

    def __init__(self, name, working_set, sweep):
        super().__init__(name=name)
        self.working_set = working_set
        self.sweep = sweep

    def warp_program(self, ctx, sm_slot, warp):
        from repro.gpu.kernel import Phase
        from repro.workloads.synthetic import make_mem_request

        def requests(rows, write):
            return [
                make_mem_request(ctx, 0, 0, row, col, write=write)
                for row, col in rows
            ]

        yield Phase(0, requests(self.working_set, write=False))  # install
        yield Phase(0, requests(self.working_set, write=True), wait_for_replies=False)
        yield Phase(0, requests(self.sweep, write=False))  # evict dirty lines


class TestWritebackPath:
    def test_dirty_evictions_reach_dram(self):
        """Install -> dirty -> evict produces writeback DRAM writes."""
        config = SystemConfig.scaled(num_channels=4, num_sms=4).replace(
            l2_size_bytes=4 * 1024  # 32 words per slice: constant eviction
        )
        working_set = [(0, c) for c in range(8)]
        sweep = [(row, col) for row in range(2, 12) for col in range(8)]
        spec = ScriptedGPU("wb-test", working_set, sweep)
        system, result = run_system(config, spec, num_sms=1)
        writebacks = sum(s.stats.writebacks for s in system.l2_slices)
        assert writebacks > 0
        # Writebacks are DRAM writes beyond the kernel's own forwarded stores.
        dram_writes = sum(c.stats.mem_writes for c in system.channels)
        store_misses = sum(s.stats.store_misses for s in system.l2_slices)
        assert dram_writes == store_misses + writebacks

    def test_writebacks_do_not_block_completion(self):
        config = SystemConfig.scaled(num_channels=4, num_sms=4).replace(
            l2_size_bytes=4 * 1024
        )
        spec = GPUKernelProfile(
            name="wb-drain", accesses_per_warp=128, store_fraction=0.6,
            l2_reuse=0.6, hot_words=8,
        )
        system, result = run_system(config, spec)
        assert all(v == 0 for v in system._kernel_inflight.values())


class TestMSHRSaturation:
    def test_tiny_mshr_file_stalls_but_completes(self):
        config = SystemConfig.scaled(num_channels=4, num_sms=4).replace(
            l2_mshrs_per_slice=2
        )
        spec = GPUKernelProfile(
            name="mshr-test", accesses_per_warp=192, l2_reuse=0.0,
            compute_per_phase=2, accesses_per_phase=8,
        )
        system, result = run_system(config, spec)
        stalls = sum(s.stats.stalls for s in system.l2_slices)
        assert stalls > 0  # the input stage had to retry

    def test_secondary_misses_merge(self):
        """Warps hammering a shared hot set merge in the MSHRs."""
        config = SystemConfig.scaled(num_channels=4, num_sms=4)
        spec = GPUKernelProfile(
            name="merge-test", accesses_per_warp=128, l2_reuse=0.9,
            hot_words=4, compute_per_phase=0, accesses_per_phase=8,
        )
        system, result = run_system(config, spec, num_sms=4)
        merges = sum(s.stats.load_merges for s in system.l2_slices)
        assert merges > 0


class TestQueueBackpressure:
    def test_tiny_queues_still_complete(self):
        """Extreme backpressure (4-entry queues) must not deadlock."""
        config = SystemConfig.scaled(num_channels=4, num_sms=4, noc_queue_size=4).replace(
            mem_queue_size=4, pim_queue_size=4, sm_output_queue_size=2
        )
        spec = GPUKernelProfile(name="bp-test", accesses_per_warp=96, l2_reuse=0.0)
        system, result = run_system(config, spec, max_cycles=600_000)
        assert result.cycles > 0

    def test_vc2_with_tiny_queues(self):
        config = SystemConfig.scaled(num_channels=4, num_sms=4, noc_queue_size=4).replace(
            num_virtual_channels=2
        )
        spec = GPUKernelProfile(name="bp-vc2", accesses_per_warp=96, l2_reuse=0.0)
        run_system(config, spec, max_cycles=600_000)
