"""Smoke tests: the fast, deterministic examples run and self-verify.

The heavier examples (policy comparison, LLM, congestion studies) are
exercised indirectly through the experiments tests and benchmarks; the
functional ones below verify actual data correctness, so running them is
a real end-to-end check of SM -> NoC -> MC -> PIM execution.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"
FAST_EXAMPLES = ["pim_vector_add.py", "custom_pim_kernel.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_functional_example_passes(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout


def test_examples_are_documented():
    """Every example starts with a shebang and a module docstring."""
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.startswith("#!/usr/bin/env python3"), script.name
        assert '"""' in text.split("\n", 2)[1], script.name
