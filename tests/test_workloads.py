"""Tests for the workload generators (Rodinia profiles, PIM suite, LLM)."""

import numpy as np
import pytest

from repro.dram.address import AddressMapper, scaled_address_map
from repro.gpu.kernel import LaunchContext
from repro.pim.isa import PIMOpKind
from repro.workloads import (
    PIM_SUITE,
    RODINIA,
    GPUKernelProfile,
    PIMGemvKernel,
    PIMStreamKernel,
    get_gpu_kernel,
    get_pim_kernel,
    llm_kernels,
    pim_ids,
    rodinia_ids,
)


def make_ctx(num_channels=4, warps=4, scale=1.0):
    return LaunchContext(
        mapper=AddressMapper(scaled_address_map(2)),
        num_channels=num_channels,
        banks_per_channel=16,
        num_sms=1,
        warps_per_sm=warps,
        rng=np.random.default_rng(3),
        scale=scale,
    )


def collect(spec, ctx, sm_slot=0, warp=0, limit=100_000):
    requests = []
    for phase in spec.warp_program(ctx, sm_slot, warp):
        requests.extend(phase.requests)
        if len(requests) > limit:
            break
    return requests


class TestSuites:
    def test_rodinia_has_20_kernels(self):
        assert len(RODINIA) == 20
        assert rodinia_ids() == [f"G{i}" for i in range(1, 21)]

    def test_pim_suite_has_9_kernels(self):
        assert len(PIM_SUITE) == 9
        assert pim_ids() == [f"P{i}" for i in range(1, 10)]

    def test_lookup_errors(self):
        with pytest.raises(KeyError):
            get_gpu_kernel("G99")
        with pytest.raises(KeyError):
            get_pim_kernel("P0")

    def test_table_names(self):
        assert RODINIA["G6"].name == "gaussian"
        assert RODINIA["G17"].name == "pathfinder"
        assert PIM_SUITE["P1"].name == "Stream Add"
        assert PIM_SUITE["P7"].name == "Fully connected"

    def test_kinds(self):
        assert all(spec.kind == "gpu" for spec in RODINIA.values())
        assert all(spec.kind == "pim" for spec in PIM_SUITE.values())


class TestGPUProfile:
    def test_request_count_scales(self):
        spec = GPUKernelProfile(name="t", accesses_per_warp=100)
        full = collect(spec, make_ctx(scale=1.0))
        half = collect(spec, make_ctx(scale=0.5))
        assert len(full) == 100
        assert len(half) == 50

    def test_addresses_decode_consistently(self):
        spec = GPUKernelProfile(name="t2", accesses_per_warp=64)
        ctx = make_ctx()
        for request in collect(spec, ctx):
            decoded = ctx.mapper.decode(request.address)
            assert decoded.channel == request.channel
            assert decoded.bank == request.bank
            assert decoded.row == request.row
            assert decoded.column == request.column

    def test_store_fraction_zero_means_all_loads(self):
        spec = GPUKernelProfile(name="t3", accesses_per_warp=64, store_fraction=0.0)
        assert all(r.is_load for r in collect(spec, make_ctx()))

    def test_high_locality_means_sequential_columns(self):
        spec = GPUKernelProfile(
            name="t4", accesses_per_warp=256, row_locality=1.0, l2_reuse=0.0
        )
        requests = collect(spec, make_ctx())
        same_row_streaks = sum(
            1
            for a, b in zip(requests, requests[1:])
            if (a.bank, a.row) == (b.bank, b.row)
        )
        assert same_row_streaks / len(requests) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUKernelProfile(name="bad", row_locality=1.5)
        with pytest.raises(ValueError):
            GPUKernelProfile(name="bad", accesses_per_phase=0)


class TestPIMStream:
    def test_block_structure_separate_rows(self):
        """Ops come in RF-sized blocks per operand row (literal Figure 3)."""
        spec = PIMStreamKernel(name="t", elements_per_warp=32, layout="separate_rows")
        ctx = make_ctx()
        requests = collect(spec, ctx)
        # 32 elements x 3 ops (load/add/store).
        assert len(requests) == 96
        block = ctx.rf_entries_per_bank
        for i in range(0, len(requests), block):
            rows = {r.row for r in requests[i : i + block]}
            assert len(rows) == 1  # each block stays in one row

    def test_operand_rows_distinct_in_separate_layout(self):
        spec = PIMStreamKernel(name="t", elements_per_warp=8, layout="separate_rows")
        requests = collect(spec, make_ctx())
        load_rows = {r.row for r in requests if r.pim_op.kind is PIMOpKind.LOAD}
        store_rows = {r.row for r in requests if r.pim_op.kind is PIMOpKind.STORE}
        assert load_rows.isdisjoint(store_rows)

    def test_same_row_layout_has_high_locality(self):
        """The default layout reproduces the paper's ~99% PIM locality."""
        spec = PIMStreamKernel(name="t", elements_per_warp=256)
        requests = collect(spec, make_ctx())
        row_switches = sum(
            1 for a, b in zip(requests, requests[1:]) if a.row != b.row
        )
        assert row_switches / len(requests) < 0.06

    def test_same_row_operand_columns_disjoint(self):
        spec = PIMStreamKernel(name="t", elements_per_warp=8)
        ctx = make_ctx()
        locations = {
            role: {spec.operand_location(ctx, role, e) for e in range(8)}
            for role in range(spec.num_operands)
        }
        assert locations[0].isdisjoint(locations[1])
        assert locations[1].isdisjoint(locations[2])

    def test_warp_maps_to_single_channel(self):
        spec = PIMStreamKernel(name="t", elements_per_warp=64)
        ctx = make_ctx(num_channels=4, warps=4)
        for warp in range(4):
            channels = {r.channel for r in collect(spec, ctx, warp=warp)}
            assert channels == {warp}

    def test_warps_capped_to_channels(self):
        spec = PIMStreamKernel(name="t")
        ctx = make_ctx(num_channels=4, warps=8)
        assert spec.warps_per_sm(ctx) == 4

    def test_all_requests_are_pim(self):
        spec = PIMStreamKernel(name="t", elements_per_warp=16)
        assert all(r.is_pim for r in collect(spec, make_ctx()))

    def test_validation(self):
        with pytest.raises(ValueError):
            PIMStreamKernel(name="bad", ops=())
        with pytest.raises(ValueError):
            PIMStreamKernel(name="bad", elements_per_warp=0)
        with pytest.raises(ValueError):
            PIMStreamKernel(name="bad", layout="diagonal")


class TestPIMGemv:
    def test_mac_dominated(self):
        spec = PIMGemvKernel(name="t", outputs_per_warp=16, macs_per_output=8)
        requests = collect(spec, make_ctx())
        macs = sum(1 for r in requests if r.pim_op.kind is PIMOpKind.MAC)
        stores = sum(1 for r in requests if r.pim_op.kind is PIMOpKind.STORE)
        assert macs > 4 * stores

    def test_validation(self):
        with pytest.raises(ValueError):
            PIMGemvKernel(name="bad", outputs_per_warp=0)


class TestLLM:
    def test_kernel_pair(self):
        qkv, mha = llm_kernels()
        assert qkv.kind == "gpu"
        assert mha.kind == "pim"

    def test_qkv_is_latency_tolerant(self):
        qkv, _ = llm_kernels()
        assert qkv.warps_per_sm(make_ctx()) >= 8
        assert qkv.l2_reuse >= 0.8  # GEMM tiles live in L2
