"""Tests for the experiment runner, figure harnesses, and sweeps."""

import pytest

from repro.core.policies import PolicySpec
from repro.experiments import (
    ABLATION_STAGES,
    ExperimentScale,
    Runner,
    collaborative_policy,
    competitive_policy,
    format_table,
    sweep_policy_parameter,
)

TINY = ExperimentScale(
    num_channels=4,
    gpu_sms_full=4,
    gpu_sms_corun=3,
    pim_sms=1,
    noc_queue_size=32,
    workload_scale=0.05,
    starvation_factor=10,
    max_cycles=400_000,
)


@pytest.fixture(scope="module")
def runner():
    return Runner(TINY)


class TestExperimentScale:
    def test_config_roundtrip(self):
        config = TINY.config(num_vcs=2)
        assert config.num_channels == 4
        assert config.num_virtual_channels == 2
        assert config.num_sms == 4

    def test_queue_override(self):
        assert TINY.config(noc_queue_size=16).noc_queue_size == 16


class TestPolicyHelpers:
    def test_competitive_params(self):
        spec = competitive_policy("FR-FCFS-Cap")
        assert spec.params == {"cap": 32}
        assert competitive_policy("FCFS").params == {}

    def test_collaborative_f3fs_caps_differ_by_vc(self):
        vc1 = collaborative_policy("F3FS", 1)
        vc2 = collaborative_policy("F3FS", 2)
        assert vc1.params != vc2.params
        assert vc1.params["mem_cap"] > vc1.params["pim_cap"]  # asymmetric
        assert vc2.params["mem_cap"] == vc2.params["pim_cap"]  # symmetric

    def test_ablation_ladder_is_incremental(self):
        assert len(ABLATION_STAGES) == 4
        assert ABLATION_STAGES[0]["policy"] == "FR-FCFS-Cap"
        assert ABLATION_STAGES[1]["params"]["current_mode_first"] is False
        assert ABLATION_STAGES[3]["params"]["mem_cap"] != ABLATION_STAGES[3]["params"]["pim_cap"]


class TestRunner:
    def test_standalone_cached(self, runner):
        first = runner.gpu_standalone("G17")
        second = runner.gpu_standalone("G17")
        assert first is second  # same object: served from cache

    def test_standalone_duration_positive(self, runner):
        assert runner.standalone_duration(
            "G17", __import__("repro.workloads", fromlist=["get_gpu_kernel"]).get_gpu_kernel("G17"),
            TINY.gpu_sms_full, 1,
        ) > 0

    def test_competitive_outcome_fields(self, runner):
        outcome = runner.competitive("G17", "P2", competitive_policy("F3FS"), num_vcs=2)
        assert 0 <= outcome.fairness <= 1
        assert outcome.throughput >= 0
        assert outcome.gpu_speedup > 0
        assert outcome.pim_speedup > 0
        assert outcome.cycles > 0

    def test_competitive_cached(self, runner):
        spec = competitive_policy("F3FS")
        a = runner.competitive("G17", "P2", spec, num_vcs=2)
        b = runner.competitive("G17", "P2", spec, num_vcs=2)
        assert a is b

    def test_different_policies_not_conflated(self, runner):
        a = runner.competitive("G17", "P2", competitive_policy("F3FS"), num_vcs=2)
        b = runner.competitive("G17", "P2", competitive_policy("FCFS"), num_vcs=2)
        assert a is not b

    def test_collaborative_outcome(self, runner):
        outcome = runner.collaborative(collaborative_policy("FR-FCFS", 2), num_vcs=2)
        assert outcome.speedup > 0
        assert outcome.ideal_speedup >= 1.0
        assert outcome.speedup <= outcome.ideal_speedup + 1e-9
        assert outcome.gpu_standalone > outcome.pim_standalone  # QKV longer

    def test_gpu_pair(self, runner):
        assert 0 < runner.gpu_pair("G17", "G10") <= 2.0

    def test_disk_cache_roundtrip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        r1 = Runner(TINY, cache_path=path)
        duration = r1.standalone_duration(
            "G17",
            __import__("repro.workloads", fromlist=["get_gpu_kernel"]).get_gpu_kernel("G17"),
            TINY.gpu_sms_full,
            1,
        )
        r2 = Runner(TINY, cache_path=path)
        key = r2._standalone_key("G17", TINY.gpu_sms_full, 1)
        assert r2._duration_cache[key] == duration


class TestSweeps:
    def test_policy_parameter_sweep(self, runner):
        rows = sweep_policy_parameter(
            runner,
            "FR-FCFS-Cap",
            "cap",
            [8, 64],
            gpu_subset=["G17"],
            pim_subset=["P2"],
            num_vcs=2,
        )
        assert len(rows) == 2
        assert {row["value"] for row in rows} == {8, 64}
        for row in rows:
            assert 0 <= row["fairness"] <= 1


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            [{"a": 1.23456, "b": "x"}, {"a": 10.0, "b": "longer"}], ["a", "b"]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, divider, 2 rows
        assert "1.235" in text
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_missing_keys_render_empty(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert "b" in text
