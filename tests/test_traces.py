"""Tests for trace export and replay."""

import json

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.dram.address import AddressMapper, scaled_address_map
from repro.gpu.kernel import LaunchContext
from repro.sim.system import GPUSystem
from repro.workloads.synthetic import GPUKernelProfile, PIMStreamKernel
from repro.workloads.traces import TraceKernel, save_trace


def make_ctx(num_channels=4):
    return LaunchContext(
        mapper=AddressMapper(scaled_address_map(2)),
        num_channels=num_channels,
        banks_per_channel=16,
        num_sms=1,
        warps_per_sm=2,
        rng=np.random.default_rng(0),
    )


@pytest.fixture
def gpu_trace(tmp_path):
    spec = GPUKernelProfile(name="traced-gpu", accesses_per_warp=48)
    path = tmp_path / "gpu.trace"
    phases = save_trace(spec, make_ctx(), path, sm_slots=1)
    assert phases > 0
    return spec, path


class TestSaveTrace:
    def test_header_and_phase_lines(self, gpu_trace):
        _, path = gpu_trace
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "gpu"
        assert header["version"] == 1
        phase = json.loads(lines[1])
        assert {"sm", "warp", "compute", "wait", "requests"} <= set(phase)

    def test_pim_trace_carries_ops(self, tmp_path):
        spec = PIMStreamKernel(name="traced-pim", elements_per_warp=8)
        path = tmp_path / "pim.trace"
        save_trace(spec, make_ctx(), path, sm_slots=1)
        lines = path.read_text().splitlines()
        phase = json.loads(lines[1])
        assert all("op" in r for r in phase["requests"])


class TestTraceKernel:
    def test_replay_matches_original(self, gpu_trace):
        spec, path = gpu_trace
        replay = TraceKernel(path)
        ctx = make_ctx()
        original = [
            (r.type, r.channel, r.bank, r.row, r.column)
            for phase in spec.warp_program(ctx, 0, 0)
            for r in phase.requests
        ]
        replayed = [
            (r.type, r.channel, r.bank, r.row, r.column)
            for phase in replay.warp_program(ctx, 0, 0)
            for r in phase.requests
        ]
        assert replayed == original

    def test_replay_runs_in_system(self, tmp_path):
        spec = PIMStreamKernel(name="traced-pim", elements_per_warp=32)
        config = SystemConfig.scaled(num_channels=4, num_sms=4)
        ctx = LaunchContext(
            mapper=config.mapper,
            num_channels=config.num_channels,
            banks_per_channel=config.banks_per_channel,
            num_sms=1,
            warps_per_sm=config.warps_per_sm,
            rng=np.random.default_rng(0),
        )
        path = tmp_path / "pim.trace"
        save_trace(spec, ctx, path, sm_slots=1)
        replay = TraceKernel(path)
        system = GPUSystem(config, PolicySpec("FR-FCFS"))
        system.add_kernel(replay, num_sms=1)
        result = system.run(max_cycles=300_000)
        assert result.all_completed
        assert result.kernels[0].requests_injected == replay.total_requests()

    def test_metadata_helpers(self, gpu_trace):
        _, path = gpu_trace
        replay = TraceKernel(path)
        assert replay.sm_slots() == 1
        assert replay.warps_per_sm(make_ctx()) == 2
        assert replay.total_requests() == 96  # 48 per warp x 2 warps

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(ValueError):
            TraceKernel(path)

    def test_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"kind": "gpu", "version": 99}\n')
        with pytest.raises(ValueError):
            TraceKernel(path)

    def test_rejects_headerless_trace(self, tmp_path):
        path = tmp_path / "no-phases.trace"
        path.write_text('{"kind": "gpu", "version": 1}\n')
        with pytest.raises(ValueError):
            TraceKernel(path)
