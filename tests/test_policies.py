"""Behavioural tests for each memory-controller scheduling policy."""

import pytest

from repro.core.controller import MemoryController
from repro.core.policies import PAPER_POLICY_ORDER, available_policies, make_policy
from repro.core.policies.base import PolicySpec
from repro.dram.channel import Channel
from repro.dram.timings import DRAMTimings
from repro.pim.executor import PIMExecutor
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Mode, Request, RequestType


def make_controller(policy_name, num_banks=4, queue=64, **params):
    channel = Channel(0, num_banks, DRAMTimings())
    pim_exec = PIMExecutor(channel, fus_per_channel=num_banks // 2, rf_entries_per_bank=8)
    policy = make_policy(policy_name, **params)
    return MemoryController(channel, pim_exec, policy, mem_queue_size=queue, pim_queue_size=queue)


def mem_request(bank=0, row=0, column=0, kernel_id=0):
    req = Request(type=RequestType.MEM_LOAD, address=0, kernel_id=kernel_id)
    req.channel, req.bank, req.row, req.column = 0, bank, row, column
    return req


def pim_request(row=0, column=0, kernel_id=1):
    req = Request(
        type=RequestType.PIM, address=0, kernel_id=kernel_id, pim_op=PIMOp(PIMOpKind.LOAD)
    )
    req.channel, req.bank, req.row, req.column = 0, 0, row, column
    return req


def drive(ctl, max_cycles=100_000):
    completed = []
    for cycle in range(max_cycles):
        completed.extend(ctl.pop_completed(cycle))
        ctl.tick(cycle)
        if ctl.outstanding() == 0:
            ctl.finalize(cycle)
            return completed, cycle
    raise AssertionError("controller did not drain")


def pim_block(row, length=8, kernel_id=1):
    return [pim_request(row=row, column=c, kernel_id=kernel_id) for c in range(length)]


class TestRegistry:
    def test_all_paper_policies_available(self):
        for name in PAPER_POLICY_ORDER:
            assert name in available_policies()

    def test_policy_spec_creates_fresh_instances(self):
        spec = PolicySpec("F3FS", mem_cap=8, pim_cap=8)
        a, b = spec.create(), spec.create()
        assert a is not b
        assert a.caps[Mode.MEM] == 8

    @pytest.mark.parametrize("name", PAPER_POLICY_ORDER)
    def test_every_policy_drains_mixed_traffic(self, name):
        ctl = make_controller(name)
        reqs = [mem_request(bank=i % 4, row=i % 3, kernel_id=0) for i in range(12)]
        reqs += pim_block(0) + pim_block(1)
        for r in reqs:
            ctl.enqueue(r, cycle=0)
        completed, _ = drive(ctl)
        assert len(completed) == len(reqs)


class TestCustomPolicyRegistration:
    def test_docs_example_policy_works(self):
        """The custom-policy recipe in docs/policies.md runs end to end."""
        from repro.core.policies import register_policy
        from repro.core.policies.base import Decision, SchedulingPolicy

        class AlwaysOldest(SchedulingPolicy):
            name = "Always-Oldest-Test"

            def decide(self, ctl, cycle):
                oldest = ctl.oldest_overall()
                if oldest is None:
                    return Decision.idle()
                if oldest.mode is not ctl.mode:
                    return Decision.switch(oldest.mode)
                if oldest.is_pim:
                    return Decision.pim() if ctl.pim_ready(cycle) else Decision.idle()
                if ctl.channel.bank_can_accept(oldest.bank, cycle):
                    return Decision.mem(oldest)
                return Decision.idle()

        try:
            register_policy("Always-Oldest-Test", AlwaysOldest)
        except ValueError:
            pass  # already registered by a previous parametrization
        ctl = make_controller("Always-Oldest-Test")
        requests = [mem_request(bank=i % 4, row=i) for i in range(4)]
        requests += pim_block(0, length=4)
        for r in requests:
            ctl.enqueue(r, cycle=0)
        completed, _ = drive(ctl)
        assert len(completed) == len(requests)

    def test_double_registration_rejected(self):
        from repro.core.policies import register_policy

        with pytest.raises(ValueError):
            register_policy("FCFS", object)


class TestStaticFirst:
    def test_mem_first_serves_all_mem_before_pim(self):
        ctl = make_controller("MEM-First")
        mems = [mem_request(bank=i % 4, row=0, column=i) for i in range(6)]
        pims = pim_block(5)
        for r in pims:  # PIM arrives first but must wait
            ctl.enqueue(r, cycle=0)
        for r in mems:
            ctl.enqueue(r, cycle=0)
        drive(ctl)
        assert max(m.cycle_issued for m in mems) < min(p.cycle_issued for p in pims)

    def test_pim_first_serves_all_pim_before_mem(self):
        ctl = make_controller("PIM-First")
        mems = [mem_request(bank=i % 4, row=0, column=i) for i in range(6)]
        pims = pim_block(5)
        for r in mems:
            ctl.enqueue(r, cycle=0)
        for r in pims:
            ctl.enqueue(r, cycle=0)
        drive(ctl)
        assert max(p.cycle_issued for p in pims) < min(m.cycle_issued for m in mems)


class TestFRFCFS:
    def test_prefers_row_hits_over_older_requests(self):
        ctl = make_controller("FR-FCFS")
        # Open row 0 on bank 0.
        opener = mem_request(bank=0, row=0, column=0)
        ctl.enqueue(opener, cycle=0)
        ctl.tick(0)
        # Older conflicting request vs newer row hit on the same bank.
        conflict = mem_request(bank=0, row=9)
        hit = mem_request(bank=0, row=0, column=1)
        ctl.enqueue(conflict, cycle=1)
        ctl.enqueue(hit, cycle=1)
        drive(ctl)
        assert hit.cycle_issued < conflict.cycle_issued

    def test_conflict_bit_switch_to_pim(self):
        """Banks stall on conflicts when the oldest request is PIM."""
        ctl = make_controller("FR-FCFS")
        pims = pim_block(7)
        for r in pims:
            ctl.enqueue(r, cycle=0)
        # Newer MEM conflicts on every bank.
        ctl.enqueue(mem_request(bank=0, row=0), cycle=0)
        completed, cycle = drive(ctl)
        ctl2_order = min(p.cycle_issued for p in pims)
        # The PIM block must issue before the MEM request is serviced only
        # if the controller switched; with the MEM request being newer and
        # conflicting... the MEM request is a miss on a fresh bank, so it
        # issues first; PIM follows. Main check: everything completed.
        assert len(completed) == len(pims) + 1

    def test_stays_in_mem_on_hits_even_with_older_pim(self):
        ctl = make_controller("FR-FCFS")
        ctl.enqueue(mem_request(bank=0, row=0, column=0), cycle=0)
        ctl.tick(0)
        # PIM arrives, then a stream of MEM hits; FR-FCFS keeps servicing hits.
        pim = pim_request(row=3)
        ctl.enqueue(pim, cycle=1)
        hits = [mem_request(bank=0, row=0, column=c + 1) for c in range(10)]
        for h in hits:
            ctl.enqueue(h, cycle=1)
        drive(ctl)
        assert max(h.cycle_issued for h in hits) < pim.cycle_issued


class TestFRFCFSCap:
    def test_cap_bounds_hit_bypasses(self):
        ctl = make_controller("FR-FCFS-Cap", cap=4)
        ctl.enqueue(mem_request(bank=0, row=0, column=0), cycle=0)
        ctl.tick(0)
        pim = pim_request(row=3)
        ctl.enqueue(pim, cycle=1)
        hits = [mem_request(bank=0, row=0, column=c + 1) for c in range(20)]
        for h in hits:
            ctl.enqueue(h, cycle=1)
        drive(ctl)
        # Only ~cap hits may bypass the PIM request; the rest come after.
        before = [h for h in hits if h.cycle_issued < pim.cycle_issued]
        assert len(before) <= 5

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            make_policy("FR-FCFS-Cap", cap=0)


class TestBLISS:
    def test_blacklisted_kernel_deprioritized(self):
        ctl = make_controller("BLISS", threshold=2, clear_interval=1_000_000)
        # Kernel 0 hammers bank 0 row 0; kernel 5 has one older request on
        # another bank that would lose under pure FR-FCFS hit priority.
        ctl.enqueue(mem_request(bank=0, row=0, column=0, kernel_id=0), cycle=0)
        ctl.tick(0)
        victim = mem_request(bank=1, row=1, kernel_id=5)
        hogs = [mem_request(bank=0, row=0, column=c + 1, kernel_id=0) for c in range(12)]
        for h in hogs[:6]:
            ctl.enqueue(h, cycle=1)
        ctl.enqueue(victim, cycle=1)
        for h in hogs[6:]:
            ctl.enqueue(h, cycle=1)
        drive(ctl)
        # The hog is blacklisted after 2 consecutive services, so the victim
        # must not be issued last.
        assert victim.cycle_issued < max(h.cycle_issued for h in hogs)

    def test_blacklist_clears(self):
        policy = make_policy("BLISS", threshold=1, clear_interval=100)
        ctl = make_controller("FCFS")  # host controller unused
        policy.attach(ctl)
        policy.blacklist.add(0)
        policy._maybe_clear(50)
        assert 0 in policy.blacklist
        policy._maybe_clear(150)
        assert not policy.blacklist

    def test_validation(self):
        with pytest.raises(ValueError):
            make_policy("BLISS", threshold=0)


class TestFRRR:
    def test_switches_on_conflict_when_pim_waiting(self):
        ctl = make_controller("FR-RR-FCFS")
        ctl.enqueue(mem_request(bank=0, row=0, column=0), cycle=0)
        ctl.tick(0)
        pims = pim_block(7)
        for r in pims:
            ctl.enqueue(r, cycle=1)
        conflict = mem_request(bank=0, row=9)
        ctl.enqueue(conflict, cycle=1)
        drive(ctl)
        # Round-robin: the conflict triggers a switch to PIM first.
        assert min(p.cycle_issued for p in pims) < conflict.cycle_issued
        assert ctl.stats.switches >= 2


class TestGatherIssue:
    def test_waits_for_high_watermark(self):
        ctl = make_controller("G&I", high_watermark=6, low_watermark=2)
        mems = [mem_request(bank=i % 4, row=0, column=i) for i in range(4)]
        for m in mems:
            ctl.enqueue(m, cycle=0)
        # 5 PIM requests: below the high watermark, MEM keeps priority.
        pims = pim_block(5, length=5)
        for p in pims:
            ctl.enqueue(p, cycle=0)
        drive(ctl)
        assert max(m.cycle_issued for m in mems) < min(p.cycle_issued for p in pims)

    def test_switches_at_high_watermark(self):
        ctl = make_controller("G&I", high_watermark=6, low_watermark=2)
        mems = [mem_request(bank=i % 4, row=0, column=i) for i in range(4)]
        pims = pim_block(5, length=8)  # 8 >= high watermark
        for p in pims:
            ctl.enqueue(p, cycle=0)
        for m in mems:
            ctl.enqueue(m, cycle=0)
        drive(ctl)
        # PIM drains first (down to the low watermark) despite MEM traffic.
        assert min(p.cycle_issued for p in pims) < min(m.cycle_issued for m in mems)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_policy("G&I", high_watermark=4, low_watermark=4)


class TestF3FS:
    def test_current_mode_first_minimizes_switches(self):
        """F3FS batches same-mode requests instead of ping-ponging."""
        f3fs = make_controller("F3FS", mem_cap=64, pim_cap=64)
        fcfs = make_controller("FCFS")
        for ctl in (f3fs, fcfs):
            for i in range(6):  # interleaved arrivals
                ctl.enqueue(mem_request(bank=i % 4, row=0, column=i), cycle=0)
                ctl.enqueue(pim_request(row=3, column=i), cycle=0)
            drive(ctl)
        assert f3fs.stats.switches < fcfs.stats.switches

    def test_cap_forces_switch(self):
        ctl = make_controller("F3FS", mem_cap=4, pim_cap=4)
        old_pim = pim_request(row=3)
        ctl.enqueue(old_pim, cycle=0)
        hits = [mem_request(bank=0, row=0, column=c) for c in range(20)]
        for h in hits:
            ctl.enqueue(h, cycle=0)
        drive(ctl)
        served_before_pim = [h for h in hits if h.cycle_issued < old_pim.cycle_issued]
        # Initial mode is MEM, so MEM requests bypass the older PIM request
        # only up to the MEM cap.
        assert len(served_before_pim) <= 4

    def test_asymmetric_caps(self):
        ctl = make_controller("F3FS", mem_cap=16, pim_cap=2)
        # Enter PIM mode by making PIM the only traffic first.
        pims = pim_block(5, length=12)
        ctl.enqueue(pims[0], cycle=0)
        for cycle in range(0, 40):
            ctl.pop_completed(cycle)
            ctl.tick(cycle)
        # An old MEM request followed by a burst of PIM requests: at most
        # pim_cap of them may bypass it.
        old_mem = mem_request(bank=3, row=7)
        ctl.enqueue(old_mem, cycle=40)
        for p in pims[1:]:
            ctl.enqueue(p, cycle=41)
        drive(ctl)
        served_before_mem = [p for p in pims[1:] if p.cycle_issued < old_mem.cycle_issued]
        assert len(served_before_mem) <= 2

    def test_ablation_flag_changes_order(self):
        """Without current-mode-first, a row-hit PIM head can win over MEM."""
        ctl = make_controller("F3FS", current_mode_first=False)
        # Mode is MEM; an old PIM request + new MEM misses: oldest-first
        # should pick PIM and switch immediately.
        old_pim = pim_request(row=3)
        ctl.enqueue(old_pim, cycle=0)
        new_mem = mem_request(bank=0, row=1)
        ctl.enqueue(new_mem, cycle=0)
        drive(ctl)
        assert old_pim.cycle_issued < new_mem.cycle_issued

    def test_validation(self):
        with pytest.raises(ValueError):
            make_policy("F3FS", mem_cap=0)
