"""Tests for the per-figure experiment harnesses (tiny configurations)."""

import pytest

from repro.experiments import (
    ExperimentScale,
    Runner,
    fig4_characterization,
    fig5_corun_slowdown,
    fig6_mem_arrival,
    fig8_fairness_throughput,
    fig10_switch_overheads,
    fig11_llm_speedup,
    fig13_intensity_extremes,
    fig14a_ablation,
    fig14b_queue_sensitivity,
)

TINY = ExperimentScale(
    num_channels=4,
    gpu_sms_full=4,
    gpu_sms_corun=3,
    pim_sms=1,
    workload_scale=0.05,
    starvation_factor=10,
)
GPUS = ["G17"]
PIMS = ["P2"]
POLICIES = ["FR-FCFS", "F3FS"]


@pytest.fixture(scope="module")
def runner():
    return Runner(TINY)


class TestFig4:
    def test_structure(self, runner):
        data = fig4_characterization(runner, GPUS, PIMS)
        assert set(data) == {"GPU-80", "GPU-8", "PIM"}
        for metrics in data["PIM"].values():
            assert metrics["blp"] == pytest.approx(16.0)
            assert 0 <= metrics["rbhr"] <= 1


class TestFig5:
    def test_structure(self, runner):
        data = fig5_corun_slowdown(runner, suite=GPUS, gpu_corunners=("G10",))
        assert set(data) == {"none", "G10", "P1"}
        assert all(v > 0 for v in data.values())


class TestFig6:
    def test_structure(self, runner):
        data = fig6_mem_arrival(runner, GPUS, PIMS, POLICIES, vc_configs=(2,))
        assert set(data) == {2}
        assert set(data[2]) == set(POLICIES)
        for per_gpu in data[2].values():
            assert set(per_gpu) == set(GPUS)


class TestFig8:
    def test_structure_and_bounds(self, runner):
        data = fig8_fairness_throughput(runner, GPUS, PIMS, POLICIES, vc_configs=(2,))
        for per_pim in data[2].values():
            for metrics in per_pim.values():
                assert 0 <= metrics["fairness"] <= 1
                assert metrics["throughput"] >= 0
                assert metrics["throughput"] == pytest.approx(
                    metrics["mem_speedup"] + metrics["pim_speedup"]
                )


class TestFig10:
    def test_fcfs_is_baseline(self, runner):
        data = fig10_switch_overheads(runner, GPUS, PIMS, POLICIES, vc_configs=(2,))
        assert data[2]["FCFS"]["switches_vs_fcfs"] == pytest.approx(1.0)
        for metrics in data[2].values():
            assert metrics["drain_latency"] >= 0

    def test_fcfs_added_if_missing(self, runner):
        data = fig10_switch_overheads(runner, GPUS, PIMS, ["F3FS"], vc_configs=(2,))
        assert "FCFS" in data[2]


class TestFig11:
    def test_ideal_bounds_everything(self, runner):
        data = fig11_llm_speedup(runner, POLICIES, vc_configs=(2,))
        ideal = data[2]["Ideal"]
        for name, value in data[2].items():
            assert value <= ideal + 1e-9


class TestFig13:
    def test_structure(self, runner):
        data = fig13_intensity_extremes(
            runner, gpu_subset=("G10",), pim_subset=PIMS, policies=POLICIES, vc_configs=(2,)
        )
        assert set(data[2]) == set(POLICIES)
        assert set(data[2]["F3FS"]) == {"G10"}


class TestFig14:
    def test_ablation_rows(self, runner):
        rows = fig14a_ablation(runner, pim_id="P2", gpu_subset=GPUS)
        assert len(rows) == 4
        labels = [row["label"] for row in rows]
        assert labels[0] == "FR-FCFS-Cap"
        for row in rows:
            assert 0 <= row["fairness"] <= 1

    def test_ablation_excludes_kmeans(self, runner):
        rows = fig14a_ablation(runner, pim_id="P2", gpu_subset=["G17", "G11"])
        # G11 (kmeans) is excluded per the paper's methodology; only G17
        # runs, so this completes quickly and produces valid rows.
        assert len(rows) == 4

    def test_queue_sensitivity(self):
        def factory(queue_size):
            return Runner(
                ExperimentScale(
                    num_channels=4, gpu_sms_full=4, gpu_sms_corun=3, pim_sms=1,
                    workload_scale=0.05, starvation_factor=10,
                    noc_queue_size=queue_size,
                )
            )

        data = fig14b_queue_sensitivity(
            factory, queue_sizes=(16, 32), gpu_subset=GPUS, pim_subset=PIMS
        )
        assert set(data) == {16, 32}
        for metrics in data.values():
            assert 0 <= metrics["fairness"] <= 1
