"""Distributed sweep fabric: coordinator, workers, and the wire protocol.

The acceptance story: a fabric sweep — coordinator plus several
workers, one of which crashes mid-campaign and one of which abandons a
lease — produces a merged store byte-identical to a single-process
``run_grid_resumable`` over the same grid, with no cell accepted more
than once per lease (proven from the journal), and a status document
that stays schema-valid throughout the churn.  On top of that, the
durability story: SIGKILL the coordinator while leases are provably
outstanding, restart it, and the write-ahead ledger replay + fencing
epochs + ``/resume`` re-adoption still deliver the same byte-identical
store with exactly one accepted completion per cell and zero accepted
stale-epoch replies (``TestRecovery``, ``TestDrain``, ``TestAuth``,
``TestHeartbeatResilience``).

Everything runs over real localhost sockets via the deterministic
harness in :mod:`tests.fabric_harness`; protocol edge cases (duplicate
completions, stale leases, corrupt payloads, out-of-order replies) are
driven by scripted :class:`~repro.fabric.FabricClient` calls.
"""

import time

import pytest

from repro.experiments import RetryPolicy
from repro.experiments.parallel import grid_store_keys, run_grid_resumable
from repro.experiments.runner import Runner
from repro.fabric import (
    FABRIC_SCHEMA,
    FabricClient,
    FabricConnectionError,
    FabricProtocolError,
    FabricWorker,
    protocol,
    validate_documents,
)
from repro.obs.status import read_status, validate_status
from repro.resilience.faults import FaultInjected
from repro.store import ResultStore
from repro.store.fingerprint import checksum
from tests.fabric_harness import (
    CoordinatorThread,
    LeaseGate,
    WorkerCrashed,
    abandon_leases,
    assert_exactly_once,
    crash_on_lease,
    journal,
    lease_accounting,
    restart_coordinator,
    start_workers,
    store_object_bytes,
)
from tests.test_store_resume import TINY, tiny_tasks

FAST = RetryPolicy(retries=2, backoff_base=0.05)


def fake_document(lease, value=None):
    """A checksum-valid store document for protocol-level tests."""
    value = value if value is not None else {"speedup": 1.0, "label": lease["label"]}
    return {
        "key": lease["key"],
        "value": value,
        "meta": {"kind": "competitive", "label": lease["label"]},
        "checksum": checksum(value),
    }


def wait_for(predicate, timeout=10.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class TestFabricEndToEnd:
    def test_crash_and_expiry_still_byte_identical(self, tmp_path):
        """The flagship: 4 workers (one crashes holding a lease, one
        abandons its first lease), short TTL — the merged store matches a
        single-process sweep byte-for-byte, each cell's result accepted
        exactly once, status schema-valid under churn."""
        tasks = tiny_tasks()
        reference = tmp_path / "ref"
        run_grid_resumable(TINY, tasks, store_dir=str(reference), max_workers=1)

        fabric = tmp_path / "fab"
        with CoordinatorThread(
            TINY, tasks, fabric, ttl=1.0, tick=0.02, retry=FAST
        ) as coord:
            workers = start_workers(
                coord.address,
                tmp_path,
                [
                    {"worker_id": "crashy", "lease_hook": crash_on_lease(0), "poll": 0.05},
                    {"worker_id": "flaky", "lease_hook": abandon_leases(1), "poll": 0.05},
                    {"worker_id": "w1", "poll": 0.05},
                    {"worker_id": "w2", "poll": 0.05},
                ],
            )
            # Poll /status through the churn; every document must validate.
            client = FabricClient(coord.address)
            seen_docs = []
            while not coord.coordinator.completed_event.wait(0.05):
                seen_docs.append(client.get("/status"))
            coord.wait()
            for thread in workers:
                thread.join()
            summary = coord.coordinator.summary()

        crashed = next(t for t in workers if t.worker.worker_id == "crashy")
        assert isinstance(crashed.error, WorkerCrashed)
        assert summary["state"] == "complete"
        assert summary["completed"] == 4 and summary["failed"] == 0

        assert seen_docs, "status endpoint was never polled"
        for doc in seen_docs:
            assert validate_status(doc) == []
        final = read_status(fabric)
        assert validate_status(final) == [] and final["state"] == "complete"

        entries = journal(fabric)
        expiries = [e for e in entries if e["event"] == protocol.EV_EXPIRE]
        assert len(expiries) >= 2  # the crashed lease and the abandoned one
        assert_exactly_once(entries, set(grid_store_keys(TINY, tasks)))

        assert store_object_bytes(reference) == store_object_bytes(fabric)

    def test_warm_store_completes_without_workers(self, tmp_path):
        tasks = tiny_tasks()[:2]
        store = tmp_path / "store"
        run_grid_resumable(TINY, tasks, store_dir=str(store), max_workers=1)
        with CoordinatorThread(TINY, tasks, store) as coord:
            coord.wait(timeout=10)
            summary = coord.coordinator.summary()
        assert summary == {
            "state": "complete",
            "total": 2,
            "completed": 2,
            "hits": 2,
            "misses": 0,
            "failed": 0,
            "workers": [],
            "epoch": 1,
            "recoveries": 0,
            "drained": False,
        }
        # No lease was ever granted for warm cells.
        assert lease_accounting(journal(store)) == {}

    def test_duplicate_tasks_collapse_to_one_lease(self, tmp_path):
        tasks = tiny_tasks()[:1] * 3  # same fingerprint three times
        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            assert len(coord.coordinator.cells) == 1
            client = FabricClient(coord.address)
            lease = client.post("/lease", {"worker": "script"})["lease"]
            # The one group is leased; a second worker gets "empty", not
            # the same fingerprint twice.
            assert client.post("/lease", {"worker": "other"}).get("empty")
            reply = client.post(
                "/complete",
                {
                    "worker": "script",
                    "lease_id": lease["lease_id"],
                    "key": lease["key"],
                    "epoch": lease["epoch"],
                    "documents": [fake_document(lease)],
                },
            )
            assert reply["accepted"]
            coord.wait(timeout=10)
            entries = journal(tmp_path / "s")
        assert_exactly_once(entries, {lease["key"]})


class TestLeaseProtocol:
    def test_duplicate_completion_rejected(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            client = FabricClient(coord.address)
            lease = client.post("/lease", {"worker": "script"})["lease"]
            body = {
                "worker": "script",
                "lease_id": lease["lease_id"],
                "key": lease["key"],
                "epoch": lease["epoch"],
                "documents": [fake_document(lease)],
            }
            first = client.post("/complete", body)
            assert first["accepted"] and lease["key"] in first["stored"]
            second = client.post("/complete", body)
            assert not second["accepted"]
            assert second["reason"] == protocol.REJECT_DONE
            coord.wait(timeout=10)
            entries = journal(tmp_path / "s")
        completes = [e for e in entries if e["event"] == protocol.EV_COMPLETE]
        rejects = [e for e in entries if e["event"] == protocol.EV_REJECT]
        assert len(completes) == 1
        assert [e["reason"] for e in rejects] == [protocol.REJECT_DONE]

    def test_expired_lease_is_stale_and_cell_is_releasable(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(
            TINY,
            tasks,
            tmp_path / "s",
            ttl=0.2,
            tick=0.02,
            retry=RetryPolicy(retries=2, backoff_base=0.0),
        ) as coord:
            client = FabricClient(coord.address)
            lease = client.post("/lease", {"worker": "script"})["lease"]
            wait_for(
                lambda: any(
                    e["event"] == protocol.EV_EXPIRE for e in journal(tmp_path / "s")
                ),
                message="lease expiry",
            )
            # Out-of-order reply after expiry: rejected as stale.
            stale = client.post(
                "/complete",
                {
                    "worker": "script",
                    "lease_id": lease["lease_id"],
                    "key": lease["key"],
                    "epoch": lease["epoch"],
                    "documents": [fake_document(lease)],
                },
            )
            assert not stale["accepted"]
            assert stale["reason"] == protocol.REJECT_STALE
            # A heartbeat for the dead lease reports it lost.
            beat = client.post(
                "/heartbeat",
                {
                    "worker": "script",
                    "epoch": lease["epoch"],
                    "lease_ids": [lease["lease_id"]],
                },
            )
            assert beat["renewed"] == [] and beat["lost"] == [lease["lease_id"]]
            # The cell re-entered the queue: second lease, attempt 2.
            release = client.post("/lease", {"worker": "script"})["lease"]
            assert release["key"] == lease["key"]
            assert release["attempt"] == 2
            assert release["lease_id"] != lease["lease_id"]
            done = client.post(
                "/complete",
                {
                    "worker": "script",
                    "lease_id": release["lease_id"],
                    "key": release["key"],
                    "epoch": release["epoch"],
                    "documents": [fake_document(release)],
                },
            )
            assert done["accepted"]
            coord.wait(timeout=10)
            entries = journal(tmp_path / "s")
        assert_exactly_once(entries, {lease["key"]})

    def test_unknown_cell_and_malformed_requests(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            client = FabricClient(coord.address)
            reply = client.post(
                "/complete",
                {"worker": "w", "lease_id": "L?", "key": "nope", "documents": []},
            )
            assert reply["reason"] == protocol.REJECT_UNKNOWN_CELL
            with pytest.raises(FabricProtocolError):
                client.post("/lease", {})  # no worker id -> 400
            with pytest.raises(FabricProtocolError):
                client.get("/nope")  # unknown endpoint -> 404

    def test_corrupt_payload_blames_lease_then_quarantines(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(
            TINY,
            tasks,
            tmp_path / "s",
            ttl=30.0,
            retry=RetryPolicy(retries=1, backoff_base=0.0),
        ) as coord:
            client = FabricClient(coord.address)
            for attempt, expected_reason in (
                (1, protocol.REJECT_CORRUPT),
                (2, protocol.REJECT_MISSING),
            ):
                lease = client.post("/lease", {"worker": "evil"})["lease"]
                assert lease["attempt"] == attempt
                if expected_reason == protocol.REJECT_CORRUPT:
                    doc = fake_document(lease)
                    doc["checksum"] = "0" * 64  # corrupted in flight
                else:
                    doc = fake_document(lease)
                    doc["key"] = "some-other-cell"  # cell's own doc missing
                reply = client.post(
                    "/complete",
                    {
                        "worker": "evil",
                        "lease_id": lease["lease_id"],
                        "key": lease["key"],
                        "epoch": lease["epoch"],
                        "documents": [doc],
                    },
                )
                assert not reply["accepted"]
                assert reply["reason"] == expected_reason
            # retries=1 exhausted -> quarantined, campaign completes.
            coord.wait(timeout=10)
            summary = coord.coordinator.summary()
            assert summary["state"] == "complete" and summary["failed"] == 1
            final = read_status(tmp_path / "s")
        assert validate_status(final) == []
        assert len(final["quarantined"]) == 1
        # Nothing was ever stored for the poisoned cell.
        assert ResultStore(tmp_path / "s").get(lease["key"]) is None

    def test_fatal_fail_quarantines_immediately(self, tmp_path):
        tasks = tiny_tasks()[:2]
        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            client = FabricClient(coord.address)
            first = client.post("/lease", {"worker": "script"})["lease"]
            reply = client.post(
                "/fail",
                {
                    "worker": "script",
                    "lease_id": first["lease_id"],
                    "key": first["key"],
                    "epoch": first["epoch"],
                    "kind": "stall",
                    "message": "livelock watchdog fired",
                    "attempts": 1,
                },
            )
            assert reply["accepted"]
            second = client.post("/lease", {"worker": "script"})["lease"]
            assert second["key"] != first["key"]  # quarantined, not re-leased
            client.post(
                "/complete",
                {
                    "worker": "script",
                    "lease_id": second["lease_id"],
                    "key": second["key"],
                    "epoch": second["epoch"],
                    "documents": [fake_document(second)],
                },
            )
            coord.wait(timeout=10)
            summary = coord.coordinator.summary()
            failures = list(coord.coordinator.failures)
        assert summary["failed"] == 1 and summary["completed"] == 1
        assert failures[0]["kind"] == "stall"
        events = [e["event"] for e in journal(tmp_path / "s")]
        assert protocol.EV_FAIL in events and "quarantine" in events


class TestWorker:
    def test_handshake_refuses_code_mismatch(self, tmp_path, monkeypatch):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(TINY, tasks, tmp_path / "s") as coord:
            monkeypatch.setattr(
                "repro.fabric.worker.code_version", lambda: "somebody-else"
            )
            worker = FabricWorker("w", coord.address, tmp_path / "scratch")
            with pytest.raises(FabricProtocolError, match="code version mismatch"):
                worker.run()

    def test_handshake_refuses_schema_mismatch(self, tmp_path, monkeypatch):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(TINY, tasks, tmp_path / "s") as coord:
            monkeypatch.setattr("repro.fabric.worker.FABRIC_SCHEMA", 999)
            worker = FabricWorker("w", coord.address, tmp_path / "scratch")
            with pytest.raises(FabricProtocolError, match="schema mismatch"):
                worker.run()

    def test_worker_retries_transient_failures_locally(self, tmp_path):
        tasks = tiny_tasks()[:1]

        class _Flaky:
            """Fails the first attempt, then delegates to a real Runner."""

            def __init__(self, scale, store):
                self.inner = Runner(scale, store=store)
                self.failures_left = 1

            def competitive(self, *args, **kwargs):
                if self.failures_left:
                    self.failures_left -= 1
                    raise FaultInjected("injected transient failure")
                return self.inner.competitive(*args, **kwargs)

        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            worker = FabricWorker(
                "w",
                coord.address,
                tmp_path / "scratch",
                retry=RetryPolicy(retries=2, backoff_base=0.0),
                runner_factory=lambda scale, store: _Flaky(scale, store),
            )
            summary = worker.run()
            coord.wait(timeout=10)
            key = coord.coordinator.cells[0].key
            stored = ResultStore(tmp_path / "s").get(key, kind="competitive")
        assert summary["completed"] == 1 and summary["failed"] == 0
        assert summary["leases"] == 1  # retried inside the lease, not via re-lease
        assert stored is not None and stored["gpu_speedup"] > 0

    def test_worker_reports_deterministic_failures(self, tmp_path):
        tasks = tiny_tasks()[:1]

        class _Broken:
            def __init__(self, scale, store):
                pass

            def competitive(self, *args, **kwargs):
                raise ValueError("bad cell configuration")

        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            worker = FabricWorker(
                "w",
                coord.address,
                tmp_path / "scratch",
                retry=RetryPolicy(retries=2, backoff_base=0.0),
                runner_factory=lambda scale, store: _Broken(scale, store),
            )
            summary = worker.run()
            coord.wait(timeout=10)
            failures = list(coord.coordinator.failures)
        assert summary["failed"] == 1 and summary["completed"] == 0
        assert failures[0]["kind"] == "config"  # ValueError -> no retries burned


class TestProtocolUnits:
    def test_validate_documents_catches_corruption(self):
        good = {
            "key": "k1",
            "value": {"a": 1},
            "meta": {"kind": "competitive"},
            "checksum": checksum({"a": 1}),
        }
        assert validate_documents([good]) == []
        assert validate_documents([]) != []
        assert validate_documents("nope") != []
        bad = dict(good, checksum="deadbeef")
        assert any("checksum" in e for e in validate_documents([bad]))
        assert any(".key" in e for e in validate_documents([{"value": 1}]))

    def test_task_round_trip(self):
        task = tiny_tasks()[0]
        rebuilt = protocol.task_from_fields(protocol.lease_task_fields(task))
        assert rebuilt == task


class TestRecovery:
    def test_kill_restart_byte_identical(self, tmp_path):
        """The ISSUE 10 acceptance story: SIGKILL the coordinator while a
        worker provably holds a lease, restart it over the same store,
        and the finished campaign is byte-identical to an uninterrupted
        single-process sweep — exactly one accepted completion per cell,
        zero accepted stale-epoch completions from the survivor."""
        tasks = tiny_tasks()
        reference = tmp_path / "ref"
        run_grid_resumable(TINY, tasks, store_dir=str(reference), max_workers=1)

        fabric = tmp_path / "fab"
        gate = LeaseGate(hold=1)
        coord = CoordinatorThread(
            TINY, tasks, fabric, ttl=3.0, tick=0.02, retry=FAST
        ).start()
        workers = start_workers(
            coord.address,
            tmp_path,
            [
                {
                    "worker_id": "survivor",
                    "lease_hook": gate,
                    "poll": 0.05,
                    "max_connect_failures": 200,
                },
                {"worker_id": "helper", "poll": 0.05, "max_connect_failures": 200},
            ],
        )
        assert gate.held.wait(60), "no lease was parked in time"
        coord.kill()  # no close record, no aborted journal line

        revived = restart_coordinator(coord)
        try:
            assert revived.coordinator.epoch == 2
            assert revived.coordinator.recoveries == 1
            gate.release()
            revived.wait()
            for thread in workers:
                thread.join()
            summary = revived.coordinator.summary()
        finally:
            revived.stop()

        assert summary["state"] == "complete"
        assert summary["completed"] == len(revived.coordinator.cells)
        assert summary["failed"] == 0 and summary["recoveries"] == 1

        entries = journal(fabric)
        events = [e["event"] for e in entries]
        assert protocol.EV_RECOVER in events
        # The survivor's parked lease crossed the restart: it was either
        # re-adopted via /resume or (if the complete raced the resume)
        # fenced as stale-epoch and retried once — never accepted twice.
        assert_exactly_once(entries, set(grid_store_keys(TINY, tasks)))
        completes = [e for e in entries if e["event"] == protocol.EV_COMPLETE]
        assert len(completes) == len(revived.coordinator.cells)

        final = read_status(fabric)
        assert validate_status(final) == []
        assert final["state"] == "complete"
        assert final["recoveries"] == 1 and final["epoch"] == 2

        assert store_object_bytes(reference) == store_object_bytes(fabric)

    def test_replay_restores_retry_and_quarantine_state(self, tmp_path):
        """Backoff deadlines, attempt counts, and the quarantine roster
        survive a kill: the revived coordinator refuses to re-lease a
        quarantined cell and continues a retried cell at attempt 2."""
        tasks = tiny_tasks()[:2]
        store = tmp_path / "s"
        coord = CoordinatorThread(
            TINY,
            tasks,
            store,
            ttl=30.0,
            tick=0.02,
            retry=RetryPolicy(retries=2, backoff_base=0.0),
        ).start()
        client = FabricClient(coord.address)
        first = client.post("/lease", {"worker": "script"})["lease"]
        # Quarantine cell 1 deterministically, burn one attempt on cell 2.
        client.post(
            "/fail",
            {
                "worker": "script",
                "lease_id": first["lease_id"],
                "key": first["key"],
                "epoch": first["epoch"],
                "kind": "stall",
                "message": "livelock watchdog fired",
                "attempts": 1,
            },
        )
        second = client.post("/lease", {"worker": "script"})["lease"]
        client.post(
            "/fail",
            {
                "worker": "script",
                "lease_id": second["lease_id"],
                "key": second["key"],
                "epoch": second["epoch"],
                "kind": "error",
                "message": "transient",
                "attempts": 1,
            },
        )
        coord.kill()

        revived = restart_coordinator(coord)
        try:
            assert revived.coordinator.recoveries == 1
            assert len(revived.coordinator.failures) == 1
            assert revived.coordinator.failures[0]["kind"] == "stall"
            client = FabricClient(revived.address)
            release = client.post("/lease", {"worker": "script"})["lease"]
            # Only the retried cell is grantable, and its history held.
            assert release["key"] == second["key"]
            assert release["attempt"] == 2
            assert release["epoch"] == 2
            reply = client.post(
                "/complete",
                {
                    "worker": "script",
                    "lease_id": release["lease_id"],
                    "key": release["key"],
                    "epoch": release["epoch"],
                    "documents": [fake_document(release)],
                },
            )
            assert reply["accepted"]
            revived.wait(timeout=10)
            summary = revived.coordinator.summary()
        finally:
            revived.stop()
        assert summary["state"] == "complete"
        assert summary["completed"] == 1 and summary["failed"] == 1

    def test_stale_epoch_completion_fenced(self, tmp_path):
        """A zombie holding a pre-restart lease cannot complete a cell
        the revived coordinator re-leased: its reply is deterministically
        rejected ``stale-epoch`` (epoch alone distinguishes it from an
        ordinary stale lease)."""
        tasks = tiny_tasks()[:1]
        store = tmp_path / "s"
        coord = CoordinatorThread(
            TINY, tasks, store, ttl=30.0, tick=0.02, resume_grace=0.0
        ).start()
        client = FabricClient(coord.address)
        zombie = client.post("/lease", {"worker": "zombie"})["lease"]
        assert zombie["epoch"] == 1
        coord.kill()

        revived = restart_coordinator(coord)
        try:
            client = FabricClient(revived.address)
            # The zombie replays its epoch-1 view verbatim.
            reply = client.post(
                "/complete",
                {
                    "worker": "zombie",
                    "lease_id": zombie["lease_id"],
                    "key": zombie["key"],
                    "epoch": zombie["epoch"],
                    "documents": [fake_document(zombie)],
                },
            )
            assert not reply["accepted"]
            assert reply["reason"] == protocol.REJECT_STALE_EPOCH
            beat = client.post(
                "/heartbeat",
                {
                    "worker": "zombie",
                    "epoch": zombie["epoch"],
                    "lease_ids": [zombie["lease_id"]],
                },
            )
            assert beat["lost"] == [zombie["lease_id"]]
            assert beat["epoch"] == 2
            # Nothing was stored for the fenced completion.
            assert ResultStore(store).get(zombie["key"]) is None
        finally:
            revived.stop()
        rejects = [
            e for e in journal(store) if e.get("event") == protocol.EV_REJECT
        ]
        assert protocol.REJECT_STALE_EPOCH in {e["reason"] for e in rejects}

    def test_resume_readopts_surviving_lease(self, tmp_path):
        """/resume re-adopts a matching pre-restart lease at the current
        epoch (making it completable) and instructs abandonment of
        anything it does not recognize."""
        tasks = tiny_tasks()[:1]
        store = tmp_path / "s"
        coord = CoordinatorThread(TINY, tasks, store, ttl=30.0, tick=0.02).start()
        client = FabricClient(coord.address)
        lease = client.post("/lease", {"worker": "survivor"})["lease"]
        coord.kill()

        revived = restart_coordinator(coord)
        try:
            client = FabricClient(revived.address)
            reply = client.post(
                "/resume",
                {
                    "worker": "survivor",
                    "held": [
                        {"lease_id": lease["lease_id"], "key": lease["key"]},
                        {"lease_id": "L99999-bogus", "key": lease["key"]},
                    ],
                },
            )
            assert reply["epoch"] == 2
            assert [r["lease_id"] for r in reply["readopted"]] == [lease["lease_id"]]
            assert reply["abandon"] == ["L99999-bogus"]
            accepted = client.post(
                "/complete",
                {
                    "worker": "survivor",
                    "lease_id": lease["lease_id"],
                    "key": lease["key"],
                    "epoch": 2,
                    "documents": [fake_document(lease)],
                },
            )
            assert accepted["accepted"]
            revived.wait(timeout=10)
        finally:
            revived.stop()
        events = [e["event"] for e in journal(store)]
        assert protocol.EV_READOPT in events
        assert_exactly_once(journal(store), {lease["key"]})


class TestDrain:
    def test_drain_finishes_in_flight_then_ledger_resumes_rest(self, tmp_path):
        """/drain stops granting, lets the in-flight lease finish, and
        finalizes with ``drained`` set; a later coordinator resumes the
        remainder from the ledger to a store byte-identical to an
        uninterrupted sweep."""
        tasks = tiny_tasks()
        reference = tmp_path / "ref"
        run_grid_resumable(TINY, tasks, store_dir=str(reference), max_workers=1)

        fabric = tmp_path / "fab"
        gate = LeaseGate(hold=1)
        coord = CoordinatorThread(
            TINY, tasks, fabric, ttl=10.0, tick=0.02, retry=FAST
        ).start()
        workers = start_workers(
            coord.address,
            tmp_path,
            [{"worker_id": "w0", "lease_hook": gate, "poll": 0.05}],
        )
        assert gate.held.wait(60)
        client = FabricClient(coord.address)
        reply = client.post("/drain", {})
        assert reply["draining"] and reply["leased"] == 1
        # Draining: no new grants, but heartbeats/completions still work.
        assert client.post("/lease", {"worker": "poller"}).get("draining")
        gate.release()
        coord.wait()
        summary = coord.coordinator.summary()
        for thread in workers:
            thread.join()
        coord.stop()

        assert summary["drained"] is True
        assert summary["state"] == "aborted"  # work remained, cleanly parked
        assert summary["completed"] >= 1
        events = [e["event"] for e in journal(fabric)]
        assert protocol.EV_DRAIN in events

        # A fresh coordinator picks the remainder up from the ledger.
        revived = restart_coordinator(coord)
        try:
            finishers = start_workers(
                revived.address, tmp_path / "r2", [{"worker_id": "w1", "poll": 0.05}]
            )
            revived.wait()
            for thread in finishers:
                thread.join()
            final = revived.coordinator.summary()
        finally:
            revived.stop()
        assert final["state"] == "complete" and final["failed"] == 0
        assert_exactly_once(journal(fabric), set(grid_store_keys(TINY, tasks)))
        assert store_object_bytes(reference) == store_object_bytes(fabric)

    def test_drain_on_idle_campaign_completes_immediately(self, tmp_path):
        tasks = tiny_tasks()[:2]
        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            client = FabricClient(coord.address)
            assert client.post("/drain", {})["draining"]
            coord.wait(timeout=10)
            summary = coord.coordinator.summary()
        assert summary["drained"] is True and summary["completed"] == 0


class TestAuth:
    def test_token_enforced_on_every_endpoint(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(
            TINY, tasks, tmp_path / "s", ttl=30.0, token="sekrit"
        ) as coord:
            bare = FabricClient(coord.address)
            with pytest.raises(FabricProtocolError, match="presented no token"):
                bare.get("/grid")
            with pytest.raises(FabricProtocolError, match="401"):
                bare.post("/lease", {"worker": "w"})
            wrong = FabricClient(coord.address, token="nope")
            with pytest.raises(FabricProtocolError, match="different token"):
                wrong.get("/grid")
            ok = FabricClient(coord.address, token="sekrit")
            assert ok.get("/grid")["schema"] == FABRIC_SCHEMA
            # An authed worker drives the campaign end to end.
            worker = FabricWorker(
                "w",
                coord.address,
                tmp_path / "scratch",
                retry=FAST,
                poll=0.05,
                token="sekrit",
            )
            summary = worker.run()
            coord.wait(timeout=30)
        assert summary["completed"] == 1

    def test_worker_handshake_names_the_mismatch(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(
            TINY, tasks, tmp_path / "s", ttl=30.0, token="sekrit"
        ) as coord:
            worker = FabricWorker("w", coord.address, tmp_path / "scratch")
            with pytest.raises(FabricProtocolError, match="token mismatch"):
                worker.run()


class TestHeartbeatResilience:
    def test_transient_heartbeat_failures_do_not_expire_lease(self, tmp_path):
        """The satellite fix: heartbeat send errors retry at ttl/12, so a
        cell that outlives the TTL survives a burst of dropped renewals
        (under the old swallow-and-wait behavior the lease would expire
        while the simulation kept running)."""
        tasks = tiny_tasks()[:1]
        store = tmp_path / "s"

        class _Slow:
            def __init__(self, scale, inner_store):
                self.inner = Runner(scale, store=inner_store)

            def competitive(self, *args, **kwargs):
                time.sleep(1.6)  # 2x the TTL: only renewals keep the lease
                return self.inner.competitive(*args, **kwargs)

        with CoordinatorThread(
            TINY,
            tasks,
            store,
            ttl=0.8,
            tick=0.02,
            retry=RetryPolicy(retries=0, backoff_base=0.0),
        ) as coord:
            worker = FabricWorker(
                "w",
                coord.address,
                tmp_path / "scratch",
                retry=FAST,
                poll=0.05,
                runner_factory=lambda scale, s: _Slow(scale, s),
            )
            real_post = worker.client.post
            drops = {"n": 0}

            def flaky_post(path, body):
                if path == "/heartbeat" and drops["n"] < 4:
                    drops["n"] += 1
                    raise FabricConnectionError("injected heartbeat drop")
                return real_post(path, body)

            worker.client.post = flaky_post
            summary = worker.run()
            coord.wait(timeout=30)
        assert drops["n"] == 4
        assert summary["completed"] == 1 and summary["leases"] == 1
        assert summary["heartbeat_retries"] >= 4
        events = [e["event"] for e in journal(store)]
        assert protocol.EV_EXPIRE not in events
