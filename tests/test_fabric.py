"""Distributed sweep fabric: coordinator, workers, and the wire protocol.

The acceptance story (ISSUE 9): a fabric sweep — coordinator plus
several workers, one of which crashes mid-campaign and one of which
abandons a lease — produces a merged store byte-identical to a
single-process ``run_grid_resumable`` over the same grid, with no cell
accepted more than once per lease (proven from the journal), and a
status document that stays schema-valid throughout the churn.

Everything runs over real localhost sockets via the deterministic
harness in :mod:`tests.fabric_harness`; protocol edge cases (duplicate
completions, stale leases, corrupt payloads, out-of-order replies) are
driven by scripted :class:`~repro.fabric.FabricClient` calls.
"""

import time

import pytest

from repro.experiments import RetryPolicy
from repro.experiments.parallel import grid_store_keys, run_grid_resumable
from repro.experiments.runner import Runner
from repro.fabric import (
    FabricClient,
    FabricProtocolError,
    FabricWorker,
    protocol,
    validate_documents,
)
from repro.obs.status import read_status, validate_status
from repro.resilience.faults import FaultInjected
from repro.store import ResultStore
from repro.store.fingerprint import checksum
from tests.fabric_harness import (
    CoordinatorThread,
    WorkerCrashed,
    abandon_leases,
    assert_exactly_once,
    crash_on_lease,
    journal,
    lease_accounting,
    start_workers,
    store_object_bytes,
)
from tests.test_store_resume import TINY, tiny_tasks

FAST = RetryPolicy(retries=2, backoff_base=0.05)


def fake_document(lease, value=None):
    """A checksum-valid store document for protocol-level tests."""
    value = value if value is not None else {"speedup": 1.0, "label": lease["label"]}
    return {
        "key": lease["key"],
        "value": value,
        "meta": {"kind": "competitive", "label": lease["label"]},
        "checksum": checksum(value),
    }


def wait_for(predicate, timeout=10.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class TestFabricEndToEnd:
    def test_crash_and_expiry_still_byte_identical(self, tmp_path):
        """The flagship: 4 workers (one crashes holding a lease, one
        abandons its first lease), short TTL — the merged store matches a
        single-process sweep byte-for-byte, each cell's result accepted
        exactly once, status schema-valid under churn."""
        tasks = tiny_tasks()
        reference = tmp_path / "ref"
        run_grid_resumable(TINY, tasks, store_dir=str(reference), max_workers=1)

        fabric = tmp_path / "fab"
        with CoordinatorThread(
            TINY, tasks, fabric, ttl=1.0, tick=0.02, retry=FAST
        ) as coord:
            workers = start_workers(
                coord.address,
                tmp_path,
                [
                    {"worker_id": "crashy", "lease_hook": crash_on_lease(0), "poll": 0.05},
                    {"worker_id": "flaky", "lease_hook": abandon_leases(1), "poll": 0.05},
                    {"worker_id": "w1", "poll": 0.05},
                    {"worker_id": "w2", "poll": 0.05},
                ],
            )
            # Poll /status through the churn; every document must validate.
            client = FabricClient(coord.address)
            seen_docs = []
            while not coord.coordinator.completed_event.wait(0.05):
                seen_docs.append(client.get("/status"))
            coord.wait()
            for thread in workers:
                thread.join()
            summary = coord.coordinator.summary()

        crashed = next(t for t in workers if t.worker.worker_id == "crashy")
        assert isinstance(crashed.error, WorkerCrashed)
        assert summary["state"] == "complete"
        assert summary["completed"] == 4 and summary["failed"] == 0

        assert seen_docs, "status endpoint was never polled"
        for doc in seen_docs:
            assert validate_status(doc) == []
        final = read_status(fabric)
        assert validate_status(final) == [] and final["state"] == "complete"

        entries = journal(fabric)
        expiries = [e for e in entries if e["event"] == protocol.EV_EXPIRE]
        assert len(expiries) >= 2  # the crashed lease and the abandoned one
        assert_exactly_once(entries, set(grid_store_keys(TINY, tasks)))

        assert store_object_bytes(reference) == store_object_bytes(fabric)

    def test_warm_store_completes_without_workers(self, tmp_path):
        tasks = tiny_tasks()[:2]
        store = tmp_path / "store"
        run_grid_resumable(TINY, tasks, store_dir=str(store), max_workers=1)
        with CoordinatorThread(TINY, tasks, store) as coord:
            coord.wait(timeout=10)
            summary = coord.coordinator.summary()
        assert summary == {
            "state": "complete",
            "total": 2,
            "completed": 2,
            "hits": 2,
            "misses": 0,
            "failed": 0,
            "workers": [],
        }
        # No lease was ever granted for warm cells.
        assert lease_accounting(journal(store)) == {}

    def test_duplicate_tasks_collapse_to_one_lease(self, tmp_path):
        tasks = tiny_tasks()[:1] * 3  # same fingerprint three times
        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            assert len(coord.coordinator.cells) == 1
            client = FabricClient(coord.address)
            lease = client.post("/lease", {"worker": "script"})["lease"]
            # The one group is leased; a second worker gets "empty", not
            # the same fingerprint twice.
            assert client.post("/lease", {"worker": "other"}).get("empty")
            reply = client.post(
                "/complete",
                {
                    "worker": "script",
                    "lease_id": lease["lease_id"],
                    "key": lease["key"],
                    "documents": [fake_document(lease)],
                },
            )
            assert reply["accepted"]
            coord.wait(timeout=10)
            entries = journal(tmp_path / "s")
        assert_exactly_once(entries, {lease["key"]})


class TestLeaseProtocol:
    def test_duplicate_completion_rejected(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            client = FabricClient(coord.address)
            lease = client.post("/lease", {"worker": "script"})["lease"]
            body = {
                "worker": "script",
                "lease_id": lease["lease_id"],
                "key": lease["key"],
                "documents": [fake_document(lease)],
            }
            first = client.post("/complete", body)
            assert first["accepted"] and lease["key"] in first["stored"]
            second = client.post("/complete", body)
            assert not second["accepted"]
            assert second["reason"] == protocol.REJECT_DONE
            coord.wait(timeout=10)
            entries = journal(tmp_path / "s")
        completes = [e for e in entries if e["event"] == protocol.EV_COMPLETE]
        rejects = [e for e in entries if e["event"] == protocol.EV_REJECT]
        assert len(completes) == 1
        assert [e["reason"] for e in rejects] == [protocol.REJECT_DONE]

    def test_expired_lease_is_stale_and_cell_is_releasable(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(
            TINY,
            tasks,
            tmp_path / "s",
            ttl=0.2,
            tick=0.02,
            retry=RetryPolicy(retries=2, backoff_base=0.0),
        ) as coord:
            client = FabricClient(coord.address)
            lease = client.post("/lease", {"worker": "script"})["lease"]
            wait_for(
                lambda: any(
                    e["event"] == protocol.EV_EXPIRE for e in journal(tmp_path / "s")
                ),
                message="lease expiry",
            )
            # Out-of-order reply after expiry: rejected as stale.
            stale = client.post(
                "/complete",
                {
                    "worker": "script",
                    "lease_id": lease["lease_id"],
                    "key": lease["key"],
                    "documents": [fake_document(lease)],
                },
            )
            assert not stale["accepted"]
            assert stale["reason"] == protocol.REJECT_STALE
            # A heartbeat for the dead lease reports it lost.
            beat = client.post(
                "/heartbeat", {"worker": "script", "lease_ids": [lease["lease_id"]]}
            )
            assert beat == {"renewed": [], "lost": [lease["lease_id"]]}
            # The cell re-entered the queue: second lease, attempt 2.
            release = client.post("/lease", {"worker": "script"})["lease"]
            assert release["key"] == lease["key"]
            assert release["attempt"] == 2
            assert release["lease_id"] != lease["lease_id"]
            done = client.post(
                "/complete",
                {
                    "worker": "script",
                    "lease_id": release["lease_id"],
                    "key": release["key"],
                    "documents": [fake_document(release)],
                },
            )
            assert done["accepted"]
            coord.wait(timeout=10)
            entries = journal(tmp_path / "s")
        assert_exactly_once(entries, {lease["key"]})

    def test_unknown_cell_and_malformed_requests(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            client = FabricClient(coord.address)
            reply = client.post(
                "/complete",
                {"worker": "w", "lease_id": "L?", "key": "nope", "documents": []},
            )
            assert reply["reason"] == protocol.REJECT_UNKNOWN_CELL
            with pytest.raises(FabricProtocolError):
                client.post("/lease", {})  # no worker id -> 400
            with pytest.raises(FabricProtocolError):
                client.get("/nope")  # unknown endpoint -> 404

    def test_corrupt_payload_blames_lease_then_quarantines(self, tmp_path):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(
            TINY,
            tasks,
            tmp_path / "s",
            ttl=30.0,
            retry=RetryPolicy(retries=1, backoff_base=0.0),
        ) as coord:
            client = FabricClient(coord.address)
            for attempt, expected_reason in (
                (1, protocol.REJECT_CORRUPT),
                (2, protocol.REJECT_MISSING),
            ):
                lease = client.post("/lease", {"worker": "evil"})["lease"]
                assert lease["attempt"] == attempt
                if expected_reason == protocol.REJECT_CORRUPT:
                    doc = fake_document(lease)
                    doc["checksum"] = "0" * 64  # corrupted in flight
                else:
                    doc = fake_document(lease)
                    doc["key"] = "some-other-cell"  # cell's own doc missing
                reply = client.post(
                    "/complete",
                    {
                        "worker": "evil",
                        "lease_id": lease["lease_id"],
                        "key": lease["key"],
                        "documents": [doc],
                    },
                )
                assert not reply["accepted"]
                assert reply["reason"] == expected_reason
            # retries=1 exhausted -> quarantined, campaign completes.
            coord.wait(timeout=10)
            summary = coord.coordinator.summary()
            assert summary["state"] == "complete" and summary["failed"] == 1
            final = read_status(tmp_path / "s")
        assert validate_status(final) == []
        assert len(final["quarantined"]) == 1
        # Nothing was ever stored for the poisoned cell.
        assert ResultStore(tmp_path / "s").get(lease["key"]) is None

    def test_fatal_fail_quarantines_immediately(self, tmp_path):
        tasks = tiny_tasks()[:2]
        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            client = FabricClient(coord.address)
            first = client.post("/lease", {"worker": "script"})["lease"]
            reply = client.post(
                "/fail",
                {
                    "worker": "script",
                    "lease_id": first["lease_id"],
                    "key": first["key"],
                    "kind": "stall",
                    "message": "livelock watchdog fired",
                    "attempts": 1,
                },
            )
            assert reply["accepted"]
            second = client.post("/lease", {"worker": "script"})["lease"]
            assert second["key"] != first["key"]  # quarantined, not re-leased
            client.post(
                "/complete",
                {
                    "worker": "script",
                    "lease_id": second["lease_id"],
                    "key": second["key"],
                    "documents": [fake_document(second)],
                },
            )
            coord.wait(timeout=10)
            summary = coord.coordinator.summary()
            failures = list(coord.coordinator.failures)
        assert summary["failed"] == 1 and summary["completed"] == 1
        assert failures[0]["kind"] == "stall"
        events = [e["event"] for e in journal(tmp_path / "s")]
        assert protocol.EV_FAIL in events and "quarantine" in events


class TestWorker:
    def test_handshake_refuses_code_mismatch(self, tmp_path, monkeypatch):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(TINY, tasks, tmp_path / "s") as coord:
            monkeypatch.setattr(
                "repro.fabric.worker.code_version", lambda: "somebody-else"
            )
            worker = FabricWorker("w", coord.address, tmp_path / "scratch")
            with pytest.raises(FabricProtocolError, match="code version mismatch"):
                worker.run()

    def test_handshake_refuses_schema_mismatch(self, tmp_path, monkeypatch):
        tasks = tiny_tasks()[:1]
        with CoordinatorThread(TINY, tasks, tmp_path / "s") as coord:
            monkeypatch.setattr("repro.fabric.worker.FABRIC_SCHEMA", 999)
            worker = FabricWorker("w", coord.address, tmp_path / "scratch")
            with pytest.raises(FabricProtocolError, match="schema mismatch"):
                worker.run()

    def test_worker_retries_transient_failures_locally(self, tmp_path):
        tasks = tiny_tasks()[:1]

        class _Flaky:
            """Fails the first attempt, then delegates to a real Runner."""

            def __init__(self, scale, store):
                self.inner = Runner(scale, store=store)
                self.failures_left = 1

            def competitive(self, *args, **kwargs):
                if self.failures_left:
                    self.failures_left -= 1
                    raise FaultInjected("injected transient failure")
                return self.inner.competitive(*args, **kwargs)

        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            worker = FabricWorker(
                "w",
                coord.address,
                tmp_path / "scratch",
                retry=RetryPolicy(retries=2, backoff_base=0.0),
                runner_factory=lambda scale, store: _Flaky(scale, store),
            )
            summary = worker.run()
            coord.wait(timeout=10)
            key = coord.coordinator.cells[0].key
            stored = ResultStore(tmp_path / "s").get(key, kind="competitive")
        assert summary["completed"] == 1 and summary["failed"] == 0
        assert summary["leases"] == 1  # retried inside the lease, not via re-lease
        assert stored is not None and stored["gpu_speedup"] > 0

    def test_worker_reports_deterministic_failures(self, tmp_path):
        tasks = tiny_tasks()[:1]

        class _Broken:
            def __init__(self, scale, store):
                pass

            def competitive(self, *args, **kwargs):
                raise ValueError("bad cell configuration")

        with CoordinatorThread(TINY, tasks, tmp_path / "s", ttl=30.0) as coord:
            worker = FabricWorker(
                "w",
                coord.address,
                tmp_path / "scratch",
                retry=RetryPolicy(retries=2, backoff_base=0.0),
                runner_factory=lambda scale, store: _Broken(scale, store),
            )
            summary = worker.run()
            coord.wait(timeout=10)
            failures = list(coord.coordinator.failures)
        assert summary["failed"] == 1 and summary["completed"] == 0
        assert failures[0]["kind"] == "config"  # ValueError -> no retries burned


class TestProtocolUnits:
    def test_validate_documents_catches_corruption(self):
        good = {
            "key": "k1",
            "value": {"a": 1},
            "meta": {"kind": "competitive"},
            "checksum": checksum({"a": 1}),
        }
        assert validate_documents([good]) == []
        assert validate_documents([]) != []
        assert validate_documents("nope") != []
        bad = dict(good, checksum="deadbeef")
        assert any("checksum" in e for e in validate_documents([bad]))
        assert any(".key" in e for e in validate_documents([{"value": 1}]))

    def test_task_round_trip(self):
        task = tiny_tasks()[0]
        rebuilt = protocol.task_from_fields(protocol.lease_task_fields(task))
        assert rebuilt == task
