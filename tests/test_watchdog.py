"""Simulation watchdog: stall detection, diagnostics, bit-identity.

The watchdog's contract has two halves: a livelocked system raises
``SimulationStalled`` with a useful diagnostic within two windows, and a
healthy system is *bit-identical* with the watchdog on or off — it
observes, it never schedules.
"""

import pickle

import pytest

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.resilience.watchdog import (
    DEFAULT_WINDOW,
    SimulationStalled,
    Watchdog,
    progress_signature,
)
from repro.sim.system import GPUSystem
from repro.workloads.synthetic import GPUKernelProfile

WINDOW = 3000

STAGES = (
    "_stage_completions",
    "_stage_replies",
    "_stage_controllers",
    "_stage_mc_ingress",
    "_stage_l2",
    "_stage_writebacks",
    "_stage_crossbar",
    "_stage_sms",
    "_stage_kernel_completion",
)


def tiny_system(num_vcs=1, **kwargs):
    defaults = dict(num_channels=4, num_sms=4, noc_queue_size=32)
    defaults.update(kwargs)
    config = SystemConfig.scaled(**defaults).replace(num_virtual_channels=num_vcs)
    system = GPUSystem(config, PolicySpec("FR-FCFS"))
    system.add_kernel(
        GPUKernelProfile(name="wd-gpu", accesses_per_warp=96, compute_per_phase=10),
        num_sms=2,
    )
    return system


def livelock(system):
    """Freeze every pipeline stage with work buffered: a true livelock.

    The cycle counter keeps advancing but no request can ever retire —
    exactly the failure mode (a policy that never grants, an arbiter
    deadlock) the watchdog exists to catch.
    """
    for run in system.runs:
        system._launch(run)
    steps = 0
    while system._backlog == 0 and steps < 50_000:
        system.step()
        steps += 1
    assert system._backlog > 0, "workload never buffered a request"
    for name in STAGES:
        setattr(system, name, lambda: None)


class TestStallDetection:
    @pytest.mark.parametrize("fast_forward", ["0", "1"])
    def test_livelock_raises_within_two_windows(self, monkeypatch, fast_forward):
        # Livelock keeps _backlog > 0, so the engine can never fast
        # forward past the checks regardless of REPRO_FAST_FORWARD.
        monkeypatch.setenv("REPRO_FAST_FORWARD", fast_forward)
        system = tiny_system()
        system.enable_watchdog(WINDOW)
        livelock(system)
        frozen_at = system.cycle
        with pytest.raises(SimulationStalled) as excinfo:
            for _ in range(2 * WINDOW + 10):
                system.step()
        assert system.cycle - frozen_at <= 2 * WINDOW
        assert f"{WINDOW} cycles" in str(excinfo.value)

    def test_diagnostic_dump_contents(self):
        system = tiny_system()
        system.enable_watchdog(WINDOW)
        livelock(system)
        with pytest.raises(SimulationStalled) as excinfo:
            for _ in range(2 * WINDOW + 10):
                system.step()
        diag = excinfo.value.diagnostic
        assert diag["window"] == WINDOW
        assert diag["backlog"] >= 1
        assert diag["cycle"] == system.cycle
        assert len(diag["channels"]) == system.config.num_channels
        for channel in diag["channels"]:
            assert {"mode", "mem_queue", "pim_queue", "switching"} <= set(channel)
        # The dump must be journal-able: plain JSON types only.
        import json

        json.dumps(diag)

    def test_stall_pickles_across_process_boundary(self):
        system = tiny_system()
        system.enable_watchdog(WINDOW)
        livelock(system)
        with pytest.raises(SimulationStalled) as excinfo:
            for _ in range(2 * WINDOW + 10):
                system.step()
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert str(clone) == str(excinfo.value)
        assert clone.diagnostic == excinfo.value.diagnostic

    def test_emits_telemetry_event_before_raising(self):
        from repro.obs import events as obs_events

        system = tiny_system()
        system.enable_telemetry()
        system.enable_watchdog(WINDOW)
        livelock(system)
        with pytest.raises(SimulationStalled):
            for _ in range(2 * WINDOW + 10):
                system.step()
        assert system.telemetry.events.by_kind().get(obs_events.WATCHDOG) == 1


class TestHealthyRuns:
    def test_no_false_positive_on_completing_kernel(self):
        # Window far below the kernel's duration: many checks, no stall.
        system = tiny_system()
        watchdog = system.enable_watchdog(500)
        result = system.run(max_cycles=200_000)
        assert result.all_completed
        assert watchdog.stalls_checked > 0

    @pytest.mark.parametrize("fast_forward", ["0", "1"])
    def test_bit_identical_with_watchdog_on_or_off(self, tmp_path, monkeypatch, fast_forward):
        """Armed vs unarmed sweeps produce the same bytes AND the same
        store fingerprints (the window lives outside ExperimentScale)."""
        monkeypatch.setenv("REPRO_FAST_FORWARD", fast_forward)
        from repro.experiments import run_sweep
        from tests.test_store_resume import TINY, table_bytes, tiny_tasks

        tasks = tiny_tasks()
        plain = run_sweep(TINY, tasks, store_dir=str(tmp_path / "s"))
        armed = run_sweep(TINY, tasks, store_dir=str(tmp_path / "s"), watchdog=2000)
        assert armed.hits == len(tasks)  # same fingerprints: pure cache hits
        assert table_bytes(armed.completed_outcomes()) == table_bytes(
            plain.completed_outcomes()
        )


class TestWatchdogObject:
    def test_enable_is_idempotent(self):
        system = tiny_system()
        first = system.enable_watchdog(WINDOW)
        assert system.enable_watchdog(123) is first
        assert first.window == WINDOW

    def test_default_window(self):
        system = tiny_system()
        assert system.enable_watchdog().window == DEFAULT_WINDOW

    @pytest.mark.parametrize("window", [0, -5, 2.5, True, "big"])
    def test_bad_window_rejected(self, window):
        with pytest.raises(ValueError, match="watchdog window"):
            Watchdog(window)

    def test_signature_moves_on_healthy_system(self):
        system = tiny_system()
        for run in system.runs:
            system._launch(run)
        before = progress_signature(system)
        for _ in range(2000):
            system.step()
        assert progress_signature(system) != before
