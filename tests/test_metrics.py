"""Tests for the fairness/throughput metrics and summary statistics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    BoxSummary,
    arithmetic_mean,
    box_summary,
    collaborative_speedup,
    fairness_index,
    geometric_mean,
    harmonic_mean_speedup,
    ideal_collaborative_speedup,
    normalize,
    speedup,
    system_throughput,
    weighted_speedup,
)
from repro.metrics.fairness import CoexecutionMetrics


class TestSpeedup:
    def test_basic(self):
        assert speedup(100, 200) == 0.5
        assert speedup(100, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0, 10)
        with pytest.raises(ValueError):
            speedup(10, 0)


class TestFairnessIndex:
    def test_equal_speedups_are_fair(self):
        assert fairness_index(0.5, 0.5) == 1.0

    def test_symmetry(self):
        assert fairness_index(0.2, 0.8) == fairness_index(0.8, 0.2)

    def test_starvation_is_zero(self):
        assert fairness_index(0.0, 0.9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fairness_index(-0.1, 0.5)

    @settings(max_examples=100)
    @given(
        a=st.floats(min_value=0.001, max_value=10),
        b=st.floats(min_value=0.001, max_value=10),
    )
    def test_bounds(self, a, b):
        fi = fairness_index(a, b)
        assert 0.0 < fi <= 1.0


class TestThroughput:
    def test_sum(self):
        assert system_throughput([0.5, 0.7]) == pytest.approx(1.2)
        assert weighted_speedup([0.5, 0.7]) == pytest.approx(1.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            system_throughput([-1.0])

    def test_harmonic_mean(self):
        assert harmonic_mean_speedup([1.0, 1.0]) == 1.0
        assert harmonic_mean_speedup([0.5, 0.0]) == 0.0
        with pytest.raises(ValueError):
            harmonic_mean_speedup([])


class TestCoexecutionMetrics:
    def test_derived_values(self):
        metrics = CoexecutionMetrics(gpu_speedup=0.4, pim_speedup=0.8)
        assert metrics.fairness == 0.5
        assert metrics.throughput == pytest.approx(1.2)


class TestCollaborative:
    def test_speedup_vs_sequential(self):
        assert collaborative_speedup(100, 100, 200) == 1.0
        assert collaborative_speedup(100, 100, 100) == 2.0

    def test_ideal(self):
        assert ideal_collaborative_speedup(100, 50) == 1.5
        assert ideal_collaborative_speedup(100, 100) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            collaborative_speedup(100, 100, 0)
        with pytest.raises(ValueError):
            ideal_collaborative_speedup(0, 0)


class TestStats:
    def test_box_summary(self):
        box = box_summary([1, 2, 3, 4, 5])
        assert box.minimum == 1
        assert box.median == 3
        assert box.maximum == 5
        assert box.q1 == 2 and box.q3 == 4
        assert box.iqr == 2

    def test_box_single_value(self):
        box = box_summary([7.0])
        assert box == BoxSummary(7.0, 7.0, 7.0, 7.0, 7.0)

    def test_box_empty_raises(self):
        with pytest.raises(ValueError):
            box_summary([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([3]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            geometric_mean([1, 0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_normalize(self):
        assert normalize([2, 4], 2) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize([1], 0)

    @settings(max_examples=100)
    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=30))
    def test_geomean_leq_mean(self, values):
        assert geometric_mean(values) <= arithmetic_mean(values) + 1e-9

    @settings(max_examples=100)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30))
    def test_box_ordering_invariant(self, values):
        box = box_summary(values)
        assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
