"""Unit and property tests for the DRAM address mapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import PAPER_ADDRESS_MAP, AddressMapper, scaled_address_map


class TestPaperMap:
    def setup_method(self):
        self.mapper = AddressMapper(PAPER_ADDRESS_MAP)

    def test_field_widths_match_table1(self):
        assert self.mapper.num_channels == 32
        assert self.mapper.num_banks == 16
        assert self.mapper.column_bits == 6
        assert self.mapper.row_bits == 21

    def test_total_bits(self):
        assert self.mapper.total_bits == 36

    def test_zero_address(self):
        d = self.mapper.decode(0)
        assert (d.channel, d.bank, d.row, d.column) == (0, 0, 0, 0)

    def test_channel_stride(self):
        # Channel bits sit at positions 3..7, so +8 bumps the channel.
        d0 = self.mapper.decode(0)
        d1 = self.mapper.decode(8)
        assert d1.channel == d0.channel + 1
        assert d1.row == d0.row
        assert d1.bank == d0.bank

    def test_low_column_bits(self):
        # The lowest three bits are column bits.
        for offset in range(8):
            d = self.mapper.decode(offset)
            assert d.channel == 0
            assert d.column == offset

    def test_encode_decode_roundtrip_simple(self):
        addr = self.mapper.encode(channel=5, bank=3, row=100, column=17)
        d = self.mapper.decode(addr)
        assert (d.channel, d.bank, d.row, d.column) == (5, 3, 100, 17)

    def test_row_overflow_extends(self):
        big_row = 1 << 25  # beyond the map's 21 row bits
        addr = self.mapper.encode(channel=0, bank=0, row=big_row, column=0)
        assert self.mapper.decode(addr).row == big_row

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            self.mapper.encode(channel=32, bank=0, row=0, column=0)
        with pytest.raises(ValueError):
            self.mapper.encode(channel=0, bank=16, row=0, column=0)
        with pytest.raises(ValueError):
            self.mapper.encode(channel=0, bank=0, row=-1, column=0)

    def test_decode_rejects_negative(self):
        with pytest.raises(ValueError):
            self.mapper.decode(-1)


class TestSpecParsing:
    def test_rejects_unknown_letters(self):
        with pytest.raises(ValueError):
            AddressMapper("RRXX")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AddressMapper("...")

    def test_ignores_separators(self):
        a = AddressMapper("RR.BB CC_DD")
        assert a.total_bits == 8
        assert a.num_channels == 4

    def test_scaled_map_shapes(self):
        for channel_bits in range(0, 6):
            mapper = AddressMapper(scaled_address_map(channel_bits))
            assert mapper.num_channels == 1 << channel_bits
            assert mapper.num_banks == 16

    def test_scaled_map_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            scaled_address_map(3, column_bits=0)


@settings(max_examples=200)
@given(address=st.integers(min_value=0, max_value=(1 << 40) - 1))
def test_decode_encode_bijection(address):
    mapper = AddressMapper(PAPER_ADDRESS_MAP)
    d = mapper.decode(address)
    assert mapper.encode(d.channel, d.bank, d.row, d.column) == address


@settings(max_examples=100)
@given(
    channel=st.integers(min_value=0, max_value=31),
    bank=st.integers(min_value=0, max_value=15),
    row=st.integers(min_value=0, max_value=(1 << 23) - 1),
    column=st.integers(min_value=0, max_value=63),
)
def test_encode_decode_bijection(channel, bank, row, column):
    mapper = AddressMapper(PAPER_ADDRESS_MAP)
    addr = mapper.encode(channel, bank, row, column)
    d = mapper.decode(addr)
    assert (d.channel, d.bank, d.row, d.column) == (channel, bank, row, column)


@settings(max_examples=50)
@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=(1 << 36) - 1), min_size=2, max_size=20, unique=True
    )
)
def test_distinct_addresses_decode_distinct(addresses):
    mapper = AddressMapper(PAPER_ADDRESS_MAP)
    coords = {
        (d.channel, d.bank, d.row, d.column)
        for d in (mapper.decode(a) for a in addresses)
    }
    assert len(coords) == len(addresses)
