"""DRAM timing validation: the command log obeys the raw JEDEC rules.

These tests use :mod:`repro.dram.validate` as an independent oracle for
the one-shot scheduling in :meth:`repro.dram.bank.Bank.schedule`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.channel import Channel
from repro.dram.timings import DRAMTimings
from repro.dram.validate import ACT, PRE, READ, WRITE, Command, validate_command_log
from repro.request import Request, RequestType


def mem_request(bank, row, column=0, write=False):
    req = Request(
        type=RequestType.MEM_STORE if write else RequestType.MEM_LOAD, address=0
    )
    req.channel, req.bank, req.row, req.column = 0, bank, row, column
    return req


class TestValidatorDetectsViolations:
    def setup_method(self):
        self.t = DRAMTimings()

    def test_clean_sequence_passes(self):
        log = [
            Command(0, ACT, 0, row=1),
            Command(12, READ, 0, row=1),
            Command(40, PRE, 0),
            Command(60, ACT, 0, row=2),
        ]
        assert validate_command_log(log, self.t) == []

    def test_trcd_violation(self):
        log = [Command(0, ACT, 0, row=1), Command(5, READ, 0, row=1)]
        violations = validate_command_log(log, self.t)
        assert any(v.rule == "tRCD" for v in violations)

    def test_tras_violation(self):
        log = [Command(0, ACT, 0, row=1), Command(10, PRE, 0)]
        violations = validate_command_log(log, self.t)
        assert any(v.rule == "tRAS" for v in violations)

    def test_trp_violation(self):
        log = [
            Command(0, ACT, 0, row=1),
            Command(40, PRE, 0),
            Command(45, ACT, 0, row=2),
        ]
        violations = validate_command_log(log, self.t)
        assert any(v.rule == "tRP" for v in violations)

    def test_trrd_violation(self):
        log = [Command(0, ACT, 0, row=1), Command(1, ACT, 1, row=1)]
        violations = validate_command_log(log, self.t)
        assert any(v.rule == "tRRD" for v in violations)

    def test_data_bus_violation(self):
        log = [
            Command(0, ACT, 0, row=1),
            Command(5, ACT, 1, row=1),
            Command(20, READ, 0, row=1),
            Command(21, READ, 1, row=1),
        ]
        violations = validate_command_log(log, self.t)
        assert any(v.rule == "data-bus" for v in violations)

    def test_column_to_closed_row(self):
        log = [Command(0, READ, 0, row=1)]
        violations = validate_command_log(log, self.t)
        assert any(v.rule == "column-to-closed-row" for v in violations)

    def test_twr_violation(self):
        log = [
            Command(0, ACT, 0, row=1),
            Command(20, WRITE, 0, row=1),  # data done at 24 (tWL + burst)
            Command(30, PRE, 0),  # tRAS satisfied, write recovery not
        ]
        violations = validate_command_log(log, self.t)
        assert any(v.rule == "tWR" for v in violations)


class TestChannelProducesLegalCommands:
    def _drive(self, accesses, timings=None):
        channel = Channel(0, 4, timings or DRAMTimings(), log_commands=True)
        cycle = 0
        for bank, row, write in accesses:
            while not channel.bank_can_accept(bank, cycle):
                cycle += 1
            channel.issue_mem(mem_request(bank, row, write=write), cycle)
            cycle += 1
        return channel

    def test_simple_stream_is_legal(self):
        accesses = [(0, 0, False), (0, 0, False), (0, 1, True), (1, 0, False)]
        channel = self._drive(accesses)
        assert validate_command_log(channel.command_log, channel.timings) == []

    @settings(max_examples=60, deadline=None)
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(0, 3),  # bank
                st.integers(0, 4),  # row
                st.booleans(),  # write
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_random_streams_are_legal(self, accesses):
        """Property: no random MEM stream produces an illegal schedule."""
        channel = self._drive(accesses)
        violations = validate_command_log(channel.command_log, channel.timings)
        assert violations == [], [str(v) for v in violations]

    def test_log_disabled_by_default(self):
        channel = Channel(0, 4, DRAMTimings())
        channel.issue_mem(mem_request(0, 0), 0)
        assert channel.command_log == []

    def test_reset_clears_log(self):
        channel = Channel(0, 4, DRAMTimings(), log_commands=True)
        channel.issue_mem(mem_request(0, 0), 0)
        channel.reset()
        assert channel.command_log == []
