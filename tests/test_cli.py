"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--gpu", "G99"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gaussian" in out
        assert "Stream Add" in out
        assert "F3FS" in out

    def test_run(self, capsys):
        code = main(
            [
                "run",
                "--gpu", "G17",
                "--pim", "P2",
                "--policy", "F3FS",
                "--vcs", "2",
                "--scale", "0.05",
                "--channels", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fairness" in out
        assert "F3FS" in out

    def test_collaborative(self, capsys):
        code = main(
            ["collaborative", "--policy", "FR-FCFS", "--vcs", "2", "--scale", "0.05", "--channels", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "ideal" in out

    def test_figure_fig4(self, capsys):
        code = main(
            [
                "figure", "fig4",
                "--gpus", "G17",
                "--pims", "P2",
                "--scale", "0.05",
                "--channels", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mc_rate" in out
        assert "PIM" in out

    def test_bench_stdout(self, capsys):
        code = main(
            [
                "bench",
                "--scenarios", "corun_horizon",
                "--no-stages",
                "--scale", "0.05",
                "--channels", "4",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        fast = payload["scenarios"]["corun_horizon"]["fast"]
        assert fast["cycles"] > 0
        assert fast["cycles_per_sec"] > 0

    def test_bench_writes_file(self, capsys, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        code = main(
            [
                "bench",
                "--scenarios", "corun_horizon",
                "--no-stages",
                "--scale", "0.05",
                "--channels", "4",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert "corun_horizon" in payload["scenarios"]
        assert "cyc/s" in capsys.readouterr().out

    def test_profile_flag(self, capsys):
        assert main(["--profile", "list"]) == 0
        out = capsys.readouterr().out
        assert "gaussian" in out
        assert "function calls" in out

    def test_figure_fig11_subset(self, capsys):
        code = main(
            [
                "figure", "fig11",
                "--policies", "FR-FCFS", "F3FS",
                "--scale", "0.05",
                "--channels", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Ideal" in out
