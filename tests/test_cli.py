"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--gpu", "G99"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gaussian" in out
        assert "Stream Add" in out
        assert "F3FS" in out

    def test_run(self, capsys):
        code = main(
            [
                "run",
                "--gpu", "G17",
                "--pim", "P2",
                "--policy", "F3FS",
                "--vcs", "2",
                "--scale", "0.05",
                "--channels", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fairness" in out
        assert "F3FS" in out

    def test_collaborative(self, capsys):
        code = main(
            ["collaborative", "--policy", "FR-FCFS", "--vcs", "2", "--scale", "0.05", "--channels", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "ideal" in out

    def test_figure_fig4(self, capsys):
        code = main(
            [
                "figure", "fig4",
                "--gpus", "G17",
                "--pims", "P2",
                "--scale", "0.05",
                "--channels", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mc_rate" in out
        assert "PIM" in out

    def test_bench_stdout(self, capsys):
        code = main(
            [
                "bench",
                "--scenarios", "corun_horizon",
                "--no-stages",
                "--scale", "0.05",
                "--channels", "4",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        fast = payload["scenarios"]["corun_horizon"]["fast"]
        assert fast["cycles"] > 0
        assert fast["cycles_per_sec"] > 0

    def test_bench_writes_file(self, capsys, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        code = main(
            [
                "bench",
                "--scenarios", "corun_horizon",
                "--no-stages",
                "--scale", "0.05",
                "--channels", "4",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert "corun_horizon" in payload["scenarios"]
        assert "cyc/s" in capsys.readouterr().out

    def test_profile_flag(self, capsys):
        assert main(["--profile", "list"]) == 0
        out = capsys.readouterr().out
        assert "gaussian" in out
        assert "function calls" in out

    def test_sweep_resume_and_store_maintenance(self, capsys, tmp_path):
        """Cold sweep -> warm sweep (all hits) -> corrupt -> verify/gc."""
        cache_dir = str(tmp_path / "store")
        argv = [
            "sweep",
            "--gpus", "G17",
            "--pims", "P2",
            "--policies", "FR-FCFS",
            "--vcs", "1",
            "--scale", "0.05",
            "--channels", "4",
            "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 cache hits, 1 simulated" in out

        # Warm re-run: every cell is a hit, so --fail-on-miss passes...
        assert main(argv + ["--fail-on-miss"]) == 0
        warm = capsys.readouterr().out
        assert "1 cache hits, 0 simulated" in warm
        # ...and the table is byte-identical to the cold run's.
        assert warm.split("cells:")[0] == out.split("cells:")[0]

        # --fresh recomputes, so --fail-on-miss now fails.
        assert main(argv + ["--fresh", "--fail-on-miss"]) == 1
        capsys.readouterr()

        assert main(["store", "ls", "--cache-dir", cache_dir]) == 0
        assert "competitive" in capsys.readouterr().out

        assert main(["store", "verify", "--cache-dir", cache_dir]) == 0
        assert "corrupt: 0" in capsys.readouterr().out

        # Truncate one object: verify exits 1, gc reaps it, verify passes.
        victim = next((tmp_path / "store" / "objects").glob("*/*.json"))
        victim.write_text(victim.read_text()[:20])
        assert main(["store", "verify", "--cache-dir", cache_dir]) == 1
        assert "corrupt: 1" in capsys.readouterr().out
        assert main(["store", "gc", "--cache-dir", cache_dir]) == 0
        assert "1 corrupt" in capsys.readouterr().out
        assert main(["store", "verify", "--cache-dir", cache_dir]) == 0

    def test_sweep_shard_and_merge(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "store")
        argv = [
            "sweep",
            "--gpus", "G17",
            "--pims", "P2",
            "--policies", "FR-FCFS", "F3FS",
            "--vcs", "1",
            "--scale", "0.05",
            "--channels", "4",
            "--cache-dir", cache_dir,
        ]
        for shard in ("0/2", "1/2"):
            assert main(argv + ["--shard", shard]) == 0
            assert f"shard {shard}" in capsys.readouterr().out
        assert main(argv + ["--merge-only"]) == 0
        out = capsys.readouterr().out
        assert "F3FS" in out and "FR-FCFS" in out
        assert "cells: 2" in out

    def test_sweep_shard_fail_on_miss_after_resume(self, capsys, tmp_path):
        """--fail-on-miss semantics hold per shard: warm passes, cold fails."""
        argv = [
            "sweep",
            "--gpus", "G17",
            "--pims", "P2",
            "--policies", "FR-FCFS", "F3FS",
            "--vcs", "1",
            "--scale", "0.05",
            "--channels", "4",
            "--cache-dir", str(tmp_path / "store"),
        ]
        assert main(argv + ["--shard", "0/2"]) == 0  # cold shard simulates
        assert main(argv + ["--shard", "0/2", "--fail-on-miss"]) == 0  # resumed: warm
        assert main(argv + ["--shard", "1/2", "--fail-on-miss"]) == 1  # cold: misses
        capsys.readouterr()

    @pytest.mark.parametrize("shard", ["3/3", "0/0", "-1/2", "x/2", "1"])
    def test_sweep_rejects_bad_shard(self, shard):
        with pytest.raises(SystemExit):
            main(["sweep", "--shard", shard, "--cache-dir", "/tmp/x"])

    def test_merge_only_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--merge-only"])

    def test_sweep_rejects_bad_retry_settings(self):
        with pytest.raises(SystemExit, match="retry"):
            main(["sweep", "--retries", "-1"])

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.experiments

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.experiments, "run_sweep", interrupted)
        code = main(["sweep", "--gpus", "G17", "--pims", "P2",
                     "--policies", "FR-FCFS", "--vcs", "1",
                     "--scale", "0.05", "--channels", "4"])
        assert code == 130
        assert "resume" in capsys.readouterr().err

    def test_sweep_strict_exit_codes_under_faults(self, capsys, tmp_path):
        """A quarantined cell exits 0 by default, 2 with --strict."""
        import json

        plan = {
            "state_dir": str(tmp_path / "fault-state"),
            "cells": {"G17|P2|FR-FCFS|vc1": {"kind": "error", "times": -1}},
        }
        plan_path = tmp_path / "faults.json"
        plan_path.write_text(json.dumps(plan))
        argv = [
            "sweep",
            "--gpus", "G17",
            "--pims", "P2",
            "--policies", "FR-FCFS", "F3FS",
            "--vcs", "1",
            "--scale", "0.05",
            "--channels", "4",
            "--cache-dir", str(tmp_path / "store"),
            "--retries", "0",
            "--backoff", "0",
            "--faults", str(plan_path),
        ]
        assert main(argv) == 0  # graceful degradation is the default
        captured = capsys.readouterr()
        assert "FAILED G17|P2|FR-FCFS|vc1: error" in captured.err
        assert "1 failed" in captured.out
        assert "F3FS" in captured.out  # healthy cell's row still printed

        assert main(argv + ["--strict"]) == 2
        captured = capsys.readouterr()
        assert "--strict" in captured.err

        # Fault-free strict rerun recovers the poisoned cell: exit 0.
        assert main(argv[:-2] + ["--strict"]) == 0
        assert "2 cache hits" not in capsys.readouterr().out  # one recomputed

    def test_figure_fig11_subset(self, capsys):
        code = main(
            [
                "figure", "fig11",
                "--policies", "FR-FCFS", "F3FS",
                "--scale", "0.05",
                "--channels", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Ideal" in out
