"""Determinism battery: resumable and sharded sweeps through the store.

The store's contract is that *how* a grid gets computed — in one shot,
interrupted and resumed, split across shards, serial or parallel — is
invisible in the result: the merged table is byte-identical in every
case.  These tests state that contract over the canonical sweep rows
(JSON) and the formatted table (text), under both engine modes
(``REPRO_FAST_FORWARD=0/1``).
"""

import json
import time
from dataclasses import asdict

import pytest

from repro.core.policies import PolicySpec
from repro.experiments import (
    ExperimentScale,
    SweepAborted,
    collect_from_store,
    format_table,
    run_sweep,
    shard_indices,
    sweep_rows,
)
from repro.experiments.parallel import make_tasks, run_grid_parallel

TINY = ExperimentScale(
    num_channels=4,
    gpu_sms_full=4,
    gpu_sms_corun=3,
    pim_sms=1,
    workload_scale=0.05,
    starvation_factor=10,
)


def tiny_tasks():
    return make_tasks(
        ["G17"], ["P1", "P2"], [PolicySpec("FR-FCFS"), PolicySpec("F3FS")], (1,)
    )


def table_bytes(outcomes) -> bytes:
    """The merged table in both canonical forms, as bytes."""
    rows = sweep_rows(outcomes)
    return (
        json.dumps(rows, sort_keys=True) + "\n" + format_table(rows, list(rows[0]))
    ).encode()


class TestShardIndices:
    def test_partition_is_exact(self):
        shards = [shard_indices(10, (i, 3)) for i in range(3)]
        flat = sorted(index for shard in shards for index in shard)
        assert flat == list(range(10))

    def test_none_means_all(self):
        assert shard_indices(4, None) == [0, 1, 2, 3]

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_indices(4, (3, 3))
        with pytest.raises(ValueError):
            shard_indices(4, (0, 0))


class TestCrashResume:
    @pytest.mark.parametrize("fast_forward", ["0", "1"])
    def test_interrupted_then_resumed_is_byte_identical(
        self, tmp_path, monkeypatch, fast_forward
    ):
        """Abort after 2 of 4 cells, resume, compare with uninterrupted."""
        monkeypatch.setenv("REPRO_FAST_FORWARD", fast_forward)
        tasks = tiny_tasks()

        reference = run_sweep(TINY, tasks, store_dir=str(tmp_path / "ref"))
        assert reference.misses == len(tasks)

        interrupted = str(tmp_path / "interrupted")
        with pytest.raises(SweepAborted) as excinfo:
            run_sweep(TINY, tasks, store_dir=interrupted, abort_after=2)
        assert excinfo.value.completed == 2

        resumed = run_sweep(TINY, tasks, store_dir=interrupted)
        assert resumed.hits == 2
        assert resumed.misses == len(tasks) - 2
        assert table_bytes(resumed.completed_outcomes()) == table_bytes(
            reference.completed_outcomes()
        )
        # The merged-from-store table is the same bytes again.
        merged = collect_from_store(TINY, tasks, interrupted)
        assert table_bytes(merged) == table_bytes(reference.completed_outcomes())

    def test_abort_persists_completed_cells(self, tmp_path):
        tasks = tiny_tasks()
        store_dir = str(tmp_path / "s")
        with pytest.raises(SweepAborted):
            run_sweep(TINY, tasks, store_dir=store_dir, abort_after=1)
        with pytest.raises(KeyError):  # partial grids must not merge silently
            collect_from_store(TINY, tasks, store_dir)

    @pytest.mark.parametrize("fast_forward", ["0", "1"])
    def test_abort_within_shard_then_resume_and_merge(
        self, tmp_path, monkeypatch, fast_forward
    ):
        """SweepAborted mid-shard: the shard resumes on its own cells
        only, and the cross-shard merge is still byte-identical."""
        monkeypatch.setenv("REPRO_FAST_FORWARD", fast_forward)
        tasks = tiny_tasks()
        reference = run_sweep(TINY, tasks, store_dir=str(tmp_path / "ref"))

        shared = str(tmp_path / "shared")
        with pytest.raises(SweepAborted) as excinfo:
            run_sweep(TINY, tasks, store_dir=shared, shard=(0, 2), abort_after=1)
        assert excinfo.value.completed == 1

        resumed = run_sweep(TINY, tasks, store_dir=shared, shard=(0, 2))
        assert resumed.hits == 1
        assert resumed.misses == len(shard_indices(len(tasks), (0, 2))) - 1
        # The aborted shard never touched the other shard's cells.
        with pytest.raises(KeyError):
            collect_from_store(TINY, tasks, shared)

        other = run_sweep(TINY, tasks, store_dir=shared, shard=(1, 2))
        assert other.misses == len(shard_indices(len(tasks), (1, 2)))
        merged = collect_from_store(TINY, tasks, shared)
        assert table_bytes(merged) == table_bytes(reference.completed_outcomes())


class TestShardMerge:
    def test_three_way_shard_merges_byte_identical(self, tmp_path):
        tasks = tiny_tasks()
        reference = run_sweep(TINY, tasks, store_dir=str(tmp_path / "ref"))

        shared = str(tmp_path / "shared")
        reports = [
            run_sweep(
                TINY,
                tasks,
                store_dir=shared,
                shard=(i, 3),
                collect_perf=True,
                max_workers=2 if i == 0 else 1,
            )
            for i in range(3)
        ]
        assert sum(r.completed for r in reports) == len(tasks)
        # Shards never overlap: every cell simulated exactly once.
        assert sum(r.misses for r in reports) == len(tasks)

        merged = collect_from_store(TINY, tasks, shared)
        assert table_bytes(merged) == table_bytes(reference.completed_outcomes())

        # Counter aggregation across shards: fold the per-shard counters
        # (engine stages + store hit/miss counts) into one set.
        from repro.perf.counters import EngineCounters

        total = EngineCounters()
        for report in reports:
            assert report.counters is not None
            total.merge(report.counters)
        assert total.calls.get("store.misses", 0) >= len(tasks)
        assert any(not stage.startswith("store.") for stage in total.calls)

    def test_collect_perf_legacy_shape_still_works(self, tmp_path):
        tasks = tiny_tasks()[:1]
        outcomes, counters = run_grid_parallel(
            TINY,
            tasks,
            max_workers=1,
            collect_perf=True,
            store_dir=str(tmp_path / "s"),
        )
        assert len(outcomes) == 1
        assert counters.calls.get("store.writes", 0) >= 1


class TestWarmCache:
    def test_warm_rerun_is_all_hits_and_fast(self, tmp_path):
        tasks = tiny_tasks()
        store_dir = str(tmp_path / "warm")

        started = time.perf_counter()
        cold = run_sweep(TINY, tasks, store_dir=store_dir)
        cold_seconds = time.perf_counter() - started
        assert cold.misses == len(tasks)

        started = time.perf_counter()
        warm = run_sweep(TINY, tasks, store_dir=store_dir)
        warm_seconds = time.perf_counter() - started
        assert warm.hits == len(tasks)
        assert warm.misses == 0
        assert table_bytes(warm.completed_outcomes()) == table_bytes(
            cold.completed_outcomes()
        )
        # The acceptance bar is >= 10x; assert a conservative 5x so the
        # test is immune to CI noise (observed: >100x).
        assert warm_seconds * 5 < cold_seconds

    def test_fresh_recomputes_but_matches(self, tmp_path):
        tasks = tiny_tasks()[:2]
        store_dir = str(tmp_path / "s")
        first = run_sweep(TINY, tasks, store_dir=store_dir)
        fresh = run_sweep(TINY, tasks, store_dir=store_dir, fresh=True)
        assert fresh.misses == len(tasks)  # bypassed reads
        assert table_bytes(fresh.completed_outcomes()) == table_bytes(
            first.completed_outcomes()
        )

    def test_store_and_storeless_runs_agree(self, tmp_path):
        tasks = tiny_tasks()[:2]
        plain = run_grid_parallel(TINY, tasks, max_workers=1)
        stored = run_grid_parallel(
            TINY, tasks, max_workers=1, store_dir=str(tmp_path / "s")
        )
        assert [asdict(a) for a in plain] == [asdict(b) for b in stored]
