"""SoA engine backend: bit-exact equivalence with the object engine.

Two layers of evidence, mirroring ``tests/test_scheduler_equivalence.py``:

* **Primitive equivalence** — each vectorized primitive in
  ``repro.engine_soa.primitives`` is pitted against a straight-line
  scalar reference on randomized (hypothesis-generated) inputs: the bank
  timing/readiness mask, the FR-FCFS argmin pick, the conflict-bit
  update, the all-stalled check, and the warp-readiness batch.
* **End-to-end equivalence** — full co-run simulations under both
  backends across all seven paper policies, telemetry on/off, and both
  fast-forward modes, requiring identical result-store fingerprints
  (``repro.store.fingerprint`` over ``result_to_dict``) *and* identical
  full ``SimResult`` dataclasses.  Configuration corners the fused paths
  do not cover (two virtual channels, mesh topology, refresh) ride the
  fallback paths and are held to the same standard.

The backend selector's validation contract (offending value + valid
choices in every error) is covered at the bottom.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.engine_soa import (
    DEFAULT_BACKEND,
    ENGINE_BACKENDS,
    ENGINE_ENV,
    backend_from_env,
    create_system,
    resolve_backend,
)
from repro.engine_soa.arrays import HIT_BIAS, NOSEQ
from repro.engine_soa.primitives import (
    all_pending_stalled,
    bank_ready_mask,
    conflict_update_mask,
    frfcfs_argmin_pick,
    warp_ready_batch,
)
from repro.request import reset_request_ids
from repro.sim.export import result_to_dict
from repro.store.fingerprint import fingerprint
from repro.workloads import get_gpu_kernel, get_pim_kernel

#: The paper's seven scheduling policies (Section IV).
SEVEN_POLICIES = (
    "FR-FCFS",
    "FR-FCFS-Cap",
    "FR-RR-FCFS",
    "F3FS",
    "Dyn-F3FS",
    "BLISS",
    "SMS",
)

MAX_CYCLES = 15_000


# ---------------------------------------------------------------------------
# Primitive equivalence (hypothesis-randomized arrays vs scalar references)
# ---------------------------------------------------------------------------

NUM_BANKS = 8

seqs = st.lists(
    st.one_of(st.integers(0, 500), st.just(NOSEQ)),
    min_size=NUM_BANKS,
    max_size=NUM_BANKS,
)
cycles_arr = st.lists(st.integers(0, 100), min_size=NUM_BANKS, max_size=NUM_BANKS)
bools_arr = st.lists(st.booleans(), min_size=NUM_BANKS, max_size=NUM_BANKS)
counts_arr = st.lists(st.integers(0, 4), min_size=NUM_BANKS, max_size=NUM_BANKS)
rows_arr = st.lists(st.integers(-1, 5), min_size=NUM_BANKS, max_size=NUM_BANKS)


@settings(max_examples=200, deadline=None)
@given(accept=cycles_arr, live=counts_arr, conflict=bools_arr,
       cycle=st.integers(0, 100), exclude=st.booleans())
def test_bank_ready_mask_matches_scalar(accept, live, conflict, cycle, exclude):
    got = bank_ready_mask(
        np.array(accept), np.array(live), np.array(conflict), cycle, exclude
    )
    for b in range(NUM_BANKS):
        want = accept[b] <= cycle and live[b] > 0
        if exclude:
            want = want and not conflict[b]
        assert bool(got[b]) == want


@settings(max_examples=200, deadline=None)
@given(ready=bools_arr, head=seqs, hit=seqs)
def test_frfcfs_argmin_pick_matches_scalar(ready, head, hit):
    # Keep the digest invariants the queue maintains: a bank with live
    # work has head_seq < NOSEQ; hit_seq is either NOSEQ or >= head_seq
    # is NOT guaranteed (a hit can be the head), so leave hit free but
    # force consistency where head says "empty".
    head = list(head)
    hit = [h if head[b] != NOSEQ else NOSEQ for b, h in enumerate(hit)]
    # Unique seqs within each class, as mc_seq uniqueness guarantees.
    bank, is_hit = frfcfs_argmin_pick(
        np.array(ready), np.array(head), np.array(hit)
    )
    best_hit = min(
        (hit[b], b) for b in range(NUM_BANKS) if ready[b]
    ) if any(ready) else (NOSEQ, -1)
    best_head = min(
        (head[b], b) for b in range(NUM_BANKS) if ready[b]
    ) if any(ready) else (NOSEQ, -1)
    if best_hit[0] != NOSEQ:
        assert (bank, is_hit) == (best_hit[1], True)
    elif best_head[0] != NOSEQ:
        assert (bank, is_hit) == (best_head[1], False)
    else:
        assert (bank, is_hit) == (-1, False)


@settings(max_examples=200, deadline=None)
@given(live=counts_arr, issued=bools_arr, conflict=bools_arr,
       open_row=rows_arr, hit=seqs)
def test_conflict_update_mask_matches_scalar(live, issued, conflict, open_row, hit):
    got = conflict_update_mask(
        np.array(live), np.array(issued), np.array(conflict),
        np.array(open_row), np.array(hit),
    )
    for b in range(NUM_BANKS):
        want = (
            live[b] > 0
            and issued[b]
            and not conflict[b]
            and open_row[b] >= 0
            and hit[b] == NOSEQ
        )
        assert bool(got[b]) == want


@settings(max_examples=200, deadline=None)
@given(live=counts_arr, conflict=bools_arr)
def test_all_pending_stalled_matches_scalar(live, conflict):
    got = all_pending_stalled(np.array(live), np.array(conflict))
    pending = [b for b in range(NUM_BANKS) if live[b] > 0]
    want = bool(pending) and all(conflict[b] for b in pending)
    assert got == want


@settings(max_examples=200, deadline=None)
@given(done=bools_arr, pending=counts_arr, until=cycles_arr,
       cycle=st.integers(0, 100))
def test_warp_ready_batch_matches_scalar(done, pending, until, cycle):
    got = warp_ready_batch(
        np.array(done), np.array(pending), np.array(until), cycle
    )
    for w in range(NUM_BANKS):
        want = (not done[w]) and pending[w] > 0 and until[w] <= cycle
        assert bool(got[w]) == want


def test_score_digest_ordering():
    # The combined score collapses the two argmins into one: any hit
    # beats any non-hit, and within a class smaller seq wins.
    assert 0 + HIT_BIAS > HIT_BIAS - 1  # any hit_seq < HIT_BIAS
    assert NOSEQ > 500 + HIT_BIAS  # idle loses to every non-hit head


# ---------------------------------------------------------------------------
# End-to-end cross-backend equivalence
# ---------------------------------------------------------------------------


def _build(
    backend: str,
    policy: str = "FR-FCFS",
    telemetry: bool = False,
    fast_forward: bool = True,
    vcs: int = 1,
    channels: int = 2,
    sms: int = 3,
    seed: int = 1,
    scale: float = 0.06,
    refresh: bool = False,
    topology: str = "crossbar",
    gpu: str = "G17",
    pim: str = "P1",
):
    reset_request_ids()
    config = SystemConfig.scaled(
        num_channels=channels, num_sms=sms, noc_queue_size=16, banks_per_channel=8
    )
    config = config.replace(
        num_virtual_channels=vcs, refresh_enabled=refresh, noc_topology=topology
    )
    system = create_system(
        config,
        PolicySpec(policy),
        backend=backend,
        seed=seed,
        scale=scale,
        fast_forward=fast_forward,
    )
    system.add_kernel(get_gpu_kernel(gpu), num_sms=max(1, sms - 1))
    system.add_kernel(get_pim_kernel(pim), num_sms=1, loop=True)
    if telemetry:
        system.enable_telemetry()
    return system


def _run_pair(**kwargs):
    results = {}
    for backend in ENGINE_BACKENDS:
        system = _build(backend, **kwargs)
        result = system.run(max_cycles=kwargs.get("max_cycles", MAX_CYCLES))
        results[backend] = (
            fingerprint(result_to_dict(result)),
            dataclasses.asdict(result),
        )
    return results


def _assert_identical(results):
    obj_fp, obj_dict = results["object"]
    soa_fp, soa_dict = results["soa"]
    assert soa_dict == obj_dict
    assert soa_fp == obj_fp


@pytest.mark.parametrize("policy", SEVEN_POLICIES)
def test_backends_identical_all_policies(policy):
    _assert_identical(_run_pair(policy=policy))


@pytest.mark.parametrize("policy", ("FR-FCFS", "F3FS"))
@pytest.mark.parametrize("fast_forward", (True, False), ids=("ff1", "ff0"))
def test_backends_identical_fast_forward_modes(policy, fast_forward):
    _assert_identical(_run_pair(policy=policy, fast_forward=fast_forward))


@pytest.mark.parametrize("policy", ("FR-FCFS", "F3FS"))
@pytest.mark.parametrize("fast_forward", (True, False), ids=("ff1", "ff0"))
def test_backends_identical_with_telemetry(policy, fast_forward):
    _assert_identical(
        _run_pair(policy=policy, telemetry=True, fast_forward=fast_forward)
    )


@settings(max_examples=6, deadline=None)
@given(
    policy=st.sampled_from(SEVEN_POLICIES),
    seed=st.integers(1, 50),
    channels=st.sampled_from((1, 2, 4)),
    sms=st.integers(2, 4),
    vcs=st.sampled_from((1, 2)),
    telemetry=st.booleans(),
    fast_forward=st.booleans(),
)
def test_backends_identical_random_configs(
    policy, seed, channels, sms, vcs, telemetry, fast_forward
):
    _assert_identical(
        _run_pair(
            policy=policy,
            seed=seed,
            channels=channels,
            sms=sms,
            vcs=vcs,
            telemetry=telemetry,
            fast_forward=fast_forward,
        )
    )


# Fallback corners: configurations the fused paths do not cover must ride
# the inherited object implementations and still match bit-for-bit.


def test_backends_identical_vc2():
    _assert_identical(_run_pair(policy="F3FS", vcs=2))


def test_backends_identical_mesh():
    _assert_identical(_run_pair(policy="FR-FCFS", topology="mesh"))


def test_backends_identical_refresh():
    _assert_identical(_run_pair(policy="FR-FCFS", refresh=True))


def test_soa_stage_attribution_same_nine_buckets():
    # ``repro bench`` stage shares must stay comparable across backends:
    # the SoA step dispatches through the same nine named stages, so the
    # perf counters see the identical bucket set.
    system = _build("soa")
    counters = system.enable_perf_counters()
    system.run(max_cycles=2_000)
    assert set(counters.breakdown()) == {
        "completions",
        "replies",
        "controllers",
        "mc_ingress",
        "l2",
        "writebacks",
        "crossbar",
        "sms",
        "kernel_completion",
    }


def test_soa_actually_accelerates_structure():
    # Not a wall-clock assertion (machine-dependent): check the SoA build
    # actually installed its array state and fused eligibility.
    system = _build("soa")
    assert type(system).__name__ == "SoAGPUSystem"
    assert system._all_fused  # plain FR-FCFS, refresh off
    assert system._ba.accept_at.shape == (2, 8)


# ---------------------------------------------------------------------------
# Backend selection and validation
# ---------------------------------------------------------------------------


def test_resolve_backend_normalizes():
    assert resolve_backend(" SoA ") == "soa"
    assert resolve_backend("OBJECT") == "object"


def test_resolve_backend_names_value_and_choices():
    with pytest.raises(ValueError) as err:
        resolve_backend("vector", source="--backend value")
    message = str(err.value)
    assert "'vector'" in message
    assert "--backend value" in message
    for choice in ENGINE_BACKENDS:
        assert choice in message


def test_backend_from_env(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    assert backend_from_env() == DEFAULT_BACKEND
    monkeypatch.setenv(ENGINE_ENV, "soa")
    assert backend_from_env() == "soa"
    monkeypatch.setenv(ENGINE_ENV, "simd")
    with pytest.raises(ValueError) as err:
        backend_from_env()
    assert "'simd'" in str(err.value)
    assert ENGINE_ENV in str(err.value)


def test_create_system_env_selection(monkeypatch):
    from repro.engine_soa.system import SoAGPUSystem
    from repro.sim.system import GPUSystem

    config = SystemConfig.scaled(num_channels=1, num_sms=1)
    monkeypatch.setenv(ENGINE_ENV, "soa")
    assert isinstance(create_system(config, PolicySpec("FR-FCFS")), SoAGPUSystem)
    monkeypatch.delenv(ENGINE_ENV)
    system = create_system(config, PolicySpec("FR-FCFS"))
    assert isinstance(system, GPUSystem) and not isinstance(system, SoAGPUSystem)


def test_runner_backend_validation():
    from repro.experiments.runner import Runner

    with pytest.raises(ValueError) as err:
        Runner(backend="fast")
    assert "'fast'" in str(err.value)
    assert "object" in str(err.value) and "soa" in str(err.value)
    assert Runner(backend="soa").backend == "soa"


# ---------------------------------------------------------------------------
# Handle-pipeline primitives (ring buffers + pooled request arrays)
# ---------------------------------------------------------------------------
#
# The hop rings replace BoundedQueue on the fused NoC path, so each
# primitive is pinned to the object-queue reference by property: random
# operation sequences must produce identical contents, acceptance
# decisions, and telemetry counters.


def _ring_ops():
    return st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(min_value=0, max_value=2**40)),
            st.tuples(st.just("pop"), st.just(0)),
        ),
        max_size=120,
    )


@given(capacity=st.integers(min_value=1, max_value=9), ops=_ring_ops())
@settings(max_examples=120, deadline=None)
def test_handle_ring_matches_bounded_queue(capacity, ops):
    from repro.engine_soa.ring import HandleRing
    from repro.noc.queues import BoundedQueue

    ring = HandleRing(capacity, "ring")
    reference = BoundedQueue(capacity, "ref")
    for op, value in ops:
        if op == "push":
            accepted = ring.try_push(value)
            assert accepted == reference.try_push(value)
        elif ring:
            assert reference
            assert ring.peek() == reference.peek()
            assert ring.pop() == reference.pop()
        else:
            assert reference.empty
        assert len(ring) == len(reference)
        assert ring.full == reference.full
        assert ring.empty == reference.empty
        assert ring.free_space == reference.free_space
        assert ring.snapshot() == list(reference)
    # Telemetry counters carried by the rings match the queue's.
    assert ring.pushes == reference.pushes
    assert ring.peak_occupancy == reference.peak_occupancy


@given(
    capacity=st.integers(min_value=1, max_value=5),
    rounds=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=60, deadline=None)
def test_handle_ring_wraps_indefinitely(capacity, rounds):
    """Monotonic head/tail: wrap-around never corrupts FIFO order."""
    from repro.engine_soa.ring import HandleRing

    ring = HandleRing(capacity, "wrap")
    value = 0
    for _ in range(rounds):
        while not ring.full:
            ring.push(value)
            value += 1
        expected_head = value - len(ring)
        assert ring.peek() == expected_head
        assert ring.pop() == expected_head
    assert ring.snapshot() == list(range(value - len(ring), value))
    assert ring.head + len(ring) == ring.tail
    assert ring.pushes == value


def test_handle_ring_push_overflow_and_clear():
    from repro.engine_soa.ring import HandleRing

    ring = HandleRing(2)
    ring.push(7)
    ring.push(8)
    with pytest.raises(OverflowError):
        ring.push(9)
    assert not ring.try_push(9)
    ring.clear()
    assert ring.empty and len(ring) == 0
    assert ring.pushes == 2  # clear drops contents, not telemetry


def _pool_requests(addresses):
    from repro.request import Request, RequestType

    requests = []
    for i, address in enumerate(addresses):
        request = Request(type=RequestType.MEM_LOAD, address=address)
        request.channel = i % 4
        request.bank = i % 3
        request.row = i
        requests.append(request)
    return requests


@given(
    addresses=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=40),
    churn=st.lists(st.integers(min_value=0, max_value=10**6), max_size=80),
)
@settings(max_examples=80, deadline=None)
def test_request_arrays_recycling_under_churn(addresses, churn):
    """Free-list recycling: live handles stay unique and column-accurate."""
    from repro.engine_soa.handles import RequestArrays

    pool = RequestArrays(initial=2)  # force growth
    live = {}
    requests = _pool_requests(addresses)
    cycle = 0
    pending = list(requests)
    actions = list(churn)
    while pending or live:
        release_first = bool(actions) and actions.pop() % 2 == 0 and live
        if release_first:
            h, request = next(iter(live.items()))
            del live[h]
            pool.release(request)
            assert request._handle == -1
            assert pool.objs[h] is None
        elif pending:
            request = pending.pop()
            cycle += 1
            h = pool.acquire(request, cycle)
            assert request._handle == h
            assert h not in live
            live[h] = request
            assert pool.channel[h] == request.channel
            assert pool.bank[h] == request.bank
            assert pool.row[h] == request.row
            assert pool.address[h] == request.address
            assert pool.is_pim[h] == 0
            assert pool.noc_entry[h] == cycle
            assert pool.materialize(h) is request
        elif live:
            h, request = next(iter(live.items()))
            del live[h]
            pool.release(request)
        assert pool.live == len(live)
    assert pool.live == 0
    assert len(pool._free) == pool.size
    assert sorted(pool._free) == list(range(pool.size))


def test_request_arrays_transfer_repoints_pinned_handle():
    from repro.engine_soa.handles import RequestArrays

    pool = RequestArrays(initial=4)
    old, fresh = _pool_requests([0x1000, 0x1000])
    h = pool.acquire(old, cycle=5)
    pool.transfer(h, fresh)
    assert fresh._handle == h
    assert pool.materialize(h) is fresh
    # Columns were written at acquire time and are identical by record.
    assert pool.address[h] == 0x1000
    assert pool.live == 1
