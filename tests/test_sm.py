"""Tests for the SM model and kernel/warp-program abstractions."""

import pytest

from repro.gpu.kernel import KernelInstance, KernelSpec, LaunchContext, Phase
from repro.gpu.sm import SM
from repro.noc.vc import VCBuffer
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Request, RequestType


def load(addr=0, channel=0):
    req = Request(type=RequestType.MEM_LOAD, address=addr)
    req.channel = channel
    return req


def store(addr=0, channel=0):
    req = Request(type=RequestType.MEM_STORE, address=addr)
    req.channel = channel
    return req


class ScriptedKernel(KernelSpec):
    """Kernel replaying a fixed list of phases per warp."""

    name = "scripted"
    kind = "gpu"

    def __init__(self, phases_factory, warps=1):
        self._factory = phases_factory
        self._warps = warps

    def warp_program(self, ctx, sm_slot, warp):
        return iter(self._factory(sm_slot, warp))

    def warps_per_sm(self, ctx):
        return self._warps


def make_ctx(**kwargs):
    import numpy as np

    from repro.dram.address import AddressMapper, scaled_address_map

    defaults = dict(
        mapper=AddressMapper(scaled_address_map(2)),
        num_channels=4,
        banks_per_channel=16,
        num_sms=1,
        warps_per_sm=1,
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return LaunchContext(**defaults)


def make_sm(spec, max_outstanding=8, num_vcs=1):
    buffer = VCBuffer(16, num_vcs)
    sm = SM(0, buffer, max_outstanding=max_outstanding)
    instance = KernelInstance(spec, make_ctx(), kernel_id=0)
    sm.attach(instance, sm_slot=0, cycle=0)
    return sm, buffer


class TestPhase:
    def test_rejects_negative_compute(self):
        with pytest.raises(ValueError):
            Phase(compute_cycles=-1)


class TestSMIssue:
    def test_issues_one_per_cycle(self):
        spec = ScriptedKernel(lambda s, w: [Phase(0, [load(), load(), load()])])
        sm, buffer = make_sm(spec)
        assert sm.step(0) == 1
        assert sm.step(1) == 1
        assert len(buffer) == 2

    def test_compute_delay_respected(self):
        spec = ScriptedKernel(lambda s, w: [Phase(10, [load()])])
        sm, buffer = make_sm(spec)
        for cycle in range(10):
            sm.step(cycle)
        assert len(buffer) == 0
        sm.step(10)
        assert len(buffer) == 1

    def test_blocks_on_full_output_buffer(self):
        spec = ScriptedKernel(lambda s, w: [Phase(0, [store() for _ in range(40)], wait_for_replies=False)])
        buffer = VCBuffer(2, 1)
        sm = SM(0, buffer, max_outstanding=64)
        sm.attach(KernelInstance(spec, make_ctx(), 0), 0, 0)
        for cycle in range(10):
            sm.step(cycle)
        assert len(buffer) == 2  # capacity-bound

    def test_outstanding_load_limit(self):
        spec = ScriptedKernel(lambda s, w: [Phase(0, [load() for _ in range(10)])])
        sm, buffer = make_sm(spec, max_outstanding=3)
        for cycle in range(10):
            sm.step(cycle)
        assert sm.outstanding_loads == 3
        assert len(buffer) == 3

    def test_wait_phase_blocks_until_replies(self):
        spec = ScriptedKernel(
            lambda s, w: [Phase(0, [load()]), Phase(0, [load()])]
        )
        sm, buffer = make_sm(spec)
        sm.step(0)
        first = buffer.pop_next()
        for cycle in range(1, 5):
            sm.step(cycle)
        assert len(buffer) == 0  # second phase blocked on the reply
        first.warp = 0
        sm.receive_reply(first, 5)
        sm.step(6)
        assert len(buffer) == 1

    def test_nowait_phase_does_not_block(self):
        spec = ScriptedKernel(
            lambda s, w: [
                Phase(0, [store()], wait_for_replies=False),
                Phase(0, [store()], wait_for_replies=False),
            ]
        )
        sm, buffer = make_sm(spec)
        sm.step(0)
        sm.step(1)
        assert len(buffer) == 2

    def test_round_robin_across_warps(self):
        spec = ScriptedKernel(
            lambda s, w: [Phase(0, [store(addr=w) for _ in range(4)], wait_for_replies=False)],
            warps=2,
        )
        sm, buffer = make_sm(spec)
        for cycle in range(4):
            sm.step(cycle)
        issued = [buffer.pop_next().address for _ in range(4)]
        assert issued == [0, 1, 0, 1]

    def test_done_when_program_and_replies_finish(self):
        spec = ScriptedKernel(lambda s, w: [Phase(0, [load()])])
        sm, buffer = make_sm(spec)
        sm.step(0)
        request = buffer.pop_next()
        sm.step(1)
        assert not sm.is_done(1)  # outstanding load
        request.warp = 0
        sm.receive_reply(request, 2)
        sm.step(3)
        assert sm.is_done(3)

    def test_reply_without_outstanding_raises(self):
        spec = ScriptedKernel(lambda s, w: [Phase(0, [])])
        sm, _ = make_sm(spec)
        with pytest.raises(RuntimeError):
            sm.receive_reply(load(), 0)

    def test_request_stamps(self):
        spec = ScriptedKernel(lambda s, w: [Phase(3, [load()])])
        sm, buffer = make_sm(spec)
        for cycle in range(5):
            sm.step(cycle)
        request = buffer.pop_next()
        assert request.source == 0
        assert request.warp == 0
        assert request.cycle_created == 3  # phase load time
        assert request.cycle_noc_entry == 3


class TestKernelInstance:
    def test_trace_deterministic_across_launches(self):
        from repro.workloads.synthetic import GPUKernelProfile

        spec = GPUKernelProfile(name="det-test", accesses_per_warp=32)
        ctx = make_ctx()
        a = KernelInstance(spec, ctx, kernel_id=0, seed=7)
        b = KernelInstance(spec, ctx, kernel_id=5, seed=7)  # different id
        addrs_a = [r.address for ph in a.warp_program(0, 0) for r in ph.requests]
        addrs_b = [r.address for ph in b.warp_program(0, 0) for r in ph.requests]
        assert addrs_a == addrs_b  # seeded by name, not kernel id

    def test_different_warps_different_traces(self):
        from repro.workloads.synthetic import GPUKernelProfile

        spec = GPUKernelProfile(name="det-test2", accesses_per_warp=32, l2_reuse=0.0)
        ctx = make_ctx()
        inst = KernelInstance(spec, ctx, kernel_id=0, seed=7)
        addrs_0 = [r.address for ph in inst.warp_program(0, 0) for r in ph.requests]
        addrs_1 = [r.address for ph in inst.warp_program(0, 1) for r in ph.requests]
        assert addrs_0 != addrs_1

    def test_duration_bookkeeping(self):
        spec = ScriptedKernel(lambda s, w: [])
        inst = KernelInstance(spec, make_ctx(), kernel_id=0)
        assert inst.duration is None
        inst.cycle_launched = 10
        inst.cycle_finished = 50
        assert inst.duration == 40
