"""Tests for the lock-step PIM executor and functional units."""

import pytest

from repro.dram.channel import Channel
from repro.dram.storage import DataStore
from repro.dram.timings import DRAMTimings
from repro.pim.executor import PIMExecutor
from repro.pim.fu import FunctionalUnit, RegisterFile
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Request, RequestType


def make_executor(num_banks=4, functional=False, store=None):
    channel = Channel(0, num_banks, DRAMTimings())
    executor = PIMExecutor(
        channel,
        fus_per_channel=num_banks // 2,
        rf_entries_per_bank=8,
        store=store,
        functional=functional,
    )
    return channel, executor


def pim_request(row=0, column=0, op=None, kernel_id=1):
    req = Request(
        type=RequestType.PIM,
        address=0,
        kernel_id=kernel_id,
        pim_op=op or PIMOp(PIMOpKind.LOAD, dst=0),
    )
    req.channel, req.bank, req.row, req.column = 0, 0, row, column
    return req


class TestRegisterFile:
    def test_read_write(self):
        rf = RegisterFile(8)
        rf.write(3, 1.5)
        assert rf.read(3) == 1.5
        assert rf.read(0) == 0.0

    def test_bounds(self):
        rf = RegisterFile(8)
        with pytest.raises(IndexError):
            rf.read(8)
        with pytest.raises(IndexError):
            rf.write(-1, 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RegisterFile(0)


class TestFunctionalUnit:
    def setup_method(self):
        self.fu = FunctionalUnit(0, [0, 1], rf_entries_per_bank=8)

    def test_load_store_roundtrip(self):
        self.fu.execute(0, PIMOp(PIMOpKind.LOAD, dst=2), 42.0)
        out = self.fu.execute(0, PIMOp(PIMOpKind.STORE, src=2), 0.0)
        assert out == 42.0

    def test_add(self):
        self.fu.execute(1, PIMOp(PIMOpKind.LOAD, dst=0), 10.0)
        self.fu.execute(1, PIMOp(PIMOpKind.ADD, dst=1, src=0), 5.0)
        assert self.fu.rf[1].read(1) == 15.0

    def test_mac(self):
        self.fu.rf[0].write(0, 3.0)  # multiplier
        self.fu.rf[0].write(1, 100.0)  # accumulator
        self.fu.execute(0, PIMOp(PIMOpKind.MAC, dst=1, src=0), 2.0)
        assert self.fu.rf[0].read(1) == 106.0

    def test_banks_have_independent_rfs(self):
        self.fu.execute(0, PIMOp(PIMOpKind.LOAD, dst=0), 1.0)
        assert self.fu.rf[1].read(0) == 0.0

    def test_dram_op_requires_value(self):
        with pytest.raises(ValueError):
            self.fu.execute(0, PIMOp(PIMOpKind.ADD, dst=0, src=0), None)


class TestExecutorTiming:
    def test_first_op_pays_activation(self):
        channel, ex = make_executor()
        t = channel.timings
        end = ex.issue(pim_request(row=0), 0)
        # Cold banks: ACT + tRCD + op.
        assert end >= t.tRCD + t.tCCDl
        assert ex.stats.row_switches == 1

    def test_same_row_ops_pipeline(self):
        channel, ex = make_executor()
        t = channel.timings
        end1 = ex.issue(pim_request(row=0, column=0), 0)
        end2 = ex.issue(pim_request(row=0, column=1), end1)
        assert end2 - end1 == t.tCCDl
        assert ex.stats.row_switches == 1

    def test_row_change_pays_pre_act(self):
        channel, ex = make_executor()
        t = channel.timings
        end1 = ex.issue(pim_request(row=0), 0)
        # Wait for tRAS legality before the row switch.
        start = max(end1, t.tRAS)
        end2 = ex.issue(pim_request(row=1), start)
        assert end2 - start >= t.tRP + t.tRCD + t.tCCDl
        assert ex.stats.row_switches == 2

    def test_all_banks_adopt_pim_row(self):
        channel, ex = make_executor()
        ex.issue(pim_request(row=5), 0)
        assert all(bank.open_row == 5 for bank in channel.banks)

    def test_busy_executor_rejects_issue(self):
        channel, ex = make_executor()
        ex.issue(pim_request(row=0), 0)
        with pytest.raises(RuntimeError):
            ex.issue(pim_request(row=0), 0)

    def test_rf_only_op_is_fast(self):
        channel, ex = make_executor()
        end = ex.issue(pim_request(op=PIMOp(PIMOpKind.EXP, dst=0, src=0)), 0)
        assert end == 1

    def test_pop_completed(self):
        channel, ex = make_executor()
        req = pim_request(row=0)
        end = ex.issue(req, 0)
        assert ex.pop_completed(end - 1) == []
        assert ex.pop_completed(end) == [req]
        assert req.cycle_completed == end
        assert ex.in_flight() == 0

    def test_mem_after_pim_conflicts(self):
        """A PIM phase destroys MEM row locality (Figure 9)."""
        channel, ex = make_executor()
        mem = Request(type=RequestType.MEM_LOAD, address=0)
        mem.channel, mem.bank, mem.row, mem.column = 0, 0, 3, 0
        channel.issue_mem(mem, 0)
        channel.pop_completed(10_000)
        end = ex.issue(pim_request(row=9), channel.banks[0].state.accept_at)
        mem2 = Request(type=RequestType.MEM_LOAD, address=0)
        mem2.channel, mem2.bank, mem2.row, mem2.column = 0, 0, 3, 0
        cycle = max(b.state.accept_at for b in channel.banks)
        channel.issue_mem(mem2, cycle)
        assert mem2.access_kind == "conflict"


class TestExecutorFunctional:
    def test_vector_add_on_all_banks(self):
        store = DataStore()
        channel, ex = make_executor(functional=True, store=store)
        num_banks = channel.num_banks
        for bank in range(num_banks):
            store.write(0, bank, 0, 0, float(bank))  # vector a in row 0
            store.write(0, bank, 1, 0, 10.0 * bank)  # vector b in row 1

        cycle = 0
        cycle = ex.issue(pim_request(row=0, column=0, op=PIMOp(PIMOpKind.LOAD, dst=0)), cycle)
        cycle = max(cycle, channel.timings.tRAS)
        cycle = ex.issue(pim_request(row=1, column=0, op=PIMOp(PIMOpKind.ADD, dst=0, src=0)), cycle)
        cycle = max(cycle, 2 * channel.timings.tRAS)
        ex.issue(pim_request(row=2, column=0, op=PIMOp(PIMOpKind.STORE, src=0)), cycle)

        for bank in range(num_banks):
            assert store.read(0, bank, 2, 0) == pytest.approx(11.0 * bank)

    def test_reset_clears_rf_and_state(self):
        store = DataStore()
        channel, ex = make_executor(functional=True, store=store)
        ex.issue(pim_request(row=0), 0)
        ex.reset()
        assert ex.open_row is None
        assert ex.busy_until == 0
        assert all(fu.rf[b].read(0) == 0.0 for fu in ex.fus for b in fu.banks)


class TestExecutorValidation:
    def test_uneven_fu_split_rejected(self):
        channel = Channel(0, 5, DRAMTimings())
        with pytest.raises(ValueError):
            PIMExecutor(channel, fus_per_channel=2, rf_entries_per_bank=8)
