"""Tests for the L2 cache slice and MSHR file."""

import pytest

from repro.cache.l2 import L2Slice, LookupResult
from repro.cache.mshr import MSHRFile
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Request, RequestType


def make_slice(words=64, assoc=4, mshrs=4):
    return L2Slice(slice_bytes=words, assoc=assoc, line_bytes=1, mshr_capacity=mshrs)


def load(address, kernel_id=0):
    return Request(type=RequestType.MEM_LOAD, address=address, kernel_id=kernel_id)


def store(address, kernel_id=0):
    return Request(type=RequestType.MEM_STORE, address=address, kernel_id=kernel_id)


class TestMSHR:
    def test_allocate_merge_release(self):
        mshrs = MSHRFile(2)
        a, b = load(1), load(1)
        assert mshrs.allocate(1, a)
        mshrs.merge(1, b)
        assert mshrs.has(1)
        assert mshrs.release(1) == [a, b]
        assert not mshrs.has(1)

    def test_capacity(self):
        mshrs = MSHRFile(1)
        assert mshrs.allocate(1, load(1))
        assert not mshrs.allocate(2, load(2))
        assert mshrs.full

    def test_double_allocate_rejected(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, load(1))
        with pytest.raises(ValueError):
            mshrs.allocate(1, load(1))

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            MSHRFile(1).release(5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestL2Lookup:
    def test_cold_load_is_primary_miss(self):
        l2 = make_slice()
        request = load(10)
        assert l2.lookup(request) == LookupResult.MISS_PRIMARY
        assert request.is_l2_fill
        assert l2.stats.load_misses == 1

    def test_second_load_merges(self):
        l2 = make_slice()
        l2.lookup(load(10))
        assert l2.lookup(load(10)) == LookupResult.MISS_SECONDARY
        assert l2.stats.load_merges == 1

    def test_load_hits_after_install(self):
        l2 = make_slice()
        fill = load(10)
        l2.lookup(fill)
        waiting, writeback = l2.install(fill)
        assert waiting == [fill]
        assert writeback is None
        assert l2.lookup(load(10)) == LookupResult.HIT
        assert l2.stats.load_hits == 1

    def test_install_replies_to_merged(self):
        l2 = make_slice()
        fill, second = load(10), load(10)
        l2.lookup(fill)
        l2.lookup(second)
        waiting, _ = l2.install(fill)
        assert waiting == [fill, second]

    def test_store_miss_forwards_without_allocation(self):
        l2 = make_slice()
        request = store(10)
        assert l2.lookup(request) == LookupResult.STORE_FORWARD
        assert not request.is_l2_fill
        assert not l2.contains(10)

    def test_store_hit_absorbs_and_dirties(self):
        l2 = make_slice()
        fill = load(10)
        l2.lookup(fill)
        l2.install(fill)
        assert l2.lookup(store(10)) == LookupResult.HIT
        assert l2.stats.store_hits == 1

    def test_blocked_when_mshrs_full(self):
        l2 = make_slice(mshrs=1)
        l2.lookup(load(1))
        assert l2.lookup(load(2)) == LookupResult.BLOCKED
        assert l2.stats.stalls == 1

    def test_pim_rejected(self):
        l2 = make_slice()
        pim = Request(type=RequestType.PIM, address=0, pim_op=PIMOp(PIMOpKind.LOAD))
        with pytest.raises(ValueError):
            l2.lookup(pim)


class TestEviction:
    def test_lru_eviction(self):
        # One set: 4-way with 4 sets of... make sets=1 via words=assoc.
        l2 = L2Slice(slice_bytes=4, assoc=4, line_bytes=1, mshr_capacity=8)
        assert l2.num_sets == 1
        for addr in range(4):
            fill = load(addr)
            l2.lookup(fill)
            l2.install(fill)
        fill = load(4)
        l2.lookup(fill)
        _, writeback = l2.install(fill)
        assert writeback is None  # victim was clean
        assert not l2.contains(0)  # LRU evicted
        assert l2.contains(4)

    def test_dirty_eviction_creates_writeback(self):
        l2 = L2Slice(slice_bytes=4, assoc=4, line_bytes=1, mshr_capacity=8)
        for addr in range(4):
            fill = load(addr)
            l2.lookup(fill)
            l2.install(fill)
        l2.lookup(store(0))  # dirty line 0
        l2.lookup(load(1))  # touch 1 so line 0 becomes LRU... order: 2,3,0,1
        fill = load(4)
        l2.lookup(fill)
        _, writeback = l2.install(fill)
        # Line 2 is LRU and clean; keep evicting until the dirty one goes.
        fills = [load(5), load(6)]
        writebacks = [writeback]
        for f in fills:
            l2.lookup(f)
            wb, = (l2.install(f)[1],)
            writebacks.append(wb)
        dirty_wbs = [w for w in writebacks if w is not None]
        assert len(dirty_wbs) == 1
        assert dirty_wbs[0].is_writeback
        assert dirty_wbs[0].address == 0
        assert l2.stats.writebacks == 1

    def test_hit_rate_and_kernel_stats(self):
        l2 = make_slice()
        fill = load(10, kernel_id=3)
        l2.lookup(fill)
        l2.install(fill)
        l2.lookup(load(10, kernel_id=3))
        assert l2.stats.kernel_accesses[3] == 2
        assert l2.stats.kernel_hits[3] == 1
        assert 0 < l2.stats.hit_rate < 1

    def test_reset(self):
        l2 = make_slice()
        fill = load(10)
        l2.lookup(fill)
        l2.install(fill)
        l2.reset()
        assert not l2.contains(10)
        assert l2.stats.accesses == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            L2Slice(slice_bytes=2, assoc=4, line_bytes=1, mshr_capacity=1)
        with pytest.raises(ValueError):
            L2Slice(slice_bytes=64, assoc=4, line_bytes=3, mshr_capacity=1)
