"""Tests for the 2D-mesh interconnect."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.noc.mesh import LOCAL, MeshFabric, MeshShape
from repro.noc.vc import VCBuffer
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Request, RequestType
from repro.sim.system import GPUSystem
from repro.workloads.synthetic import GPUKernelProfile, PIMStreamKernel


def mem_request(channel):
    req = Request(type=RequestType.MEM_LOAD, address=0)
    req.channel = channel
    return req


def pim_request(channel):
    req = Request(type=RequestType.PIM, address=0, pim_op=PIMOp(PIMOpKind.LOAD))
    req.channel = channel
    return req


class TestMeshShape:
    def test_coordinates_roundtrip(self):
        shape = MeshShape(4, 3)
        for node in range(shape.nodes):
            x, y = shape.coordinates(node)
            assert shape.node_at(x, y) == node

    def test_fit_is_minimal_and_sufficient(self):
        for n in (1, 2, 5, 12, 17):
            shape = MeshShape.fit(n)
            assert shape.nodes >= n
            if shape.height > 1:
                assert shape.width * (shape.height - 1) < n

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshShape(0, 3)


class TestMeshFabric:
    def make(self, num_sms=2, num_channels=2, num_vcs=1):
        fabric = MeshFabric(num_sms=num_sms, num_channels=num_channels, num_vcs=num_vcs)
        sm_buffers = [VCBuffer(8, num_vcs) for _ in range(num_sms)]
        channel_buffers = [VCBuffer(8, num_vcs) for _ in range(num_channels)]
        return fabric, sm_buffers, channel_buffers

    def test_request_traverses_mesh(self):
        fabric, sms, channels = self.make()
        req = mem_request(channel=1)
        sms[0].try_push(req)
        for _ in range(20):
            fabric.step(sms, channels)
            if channels[1]:
                break
        assert channels[1].peek_next() is req
        assert fabric.transfers == 1
        assert fabric.in_flight() == 0

    def test_requests_arrive_at_correct_channels(self):
        fabric, sms, channels = self.make(num_sms=3, num_channels=3)
        sent = {}
        for sm_index, channel in ((0, 2), (1, 0), (2, 1)):
            req = mem_request(channel)
            sent[channel] = req
            sms[sm_index].try_push(req)
        for _ in range(30):
            fabric.step(sms, channels)
        for channel, req in sent.items():
            assert channels[channel].peek_next() is req

    def test_one_hop_per_cycle(self):
        fabric, sms, channels = self.make(num_sms=1, num_channels=1)
        # SM at node 0, channel at the far corner: several hops needed.
        req = mem_request(channel=0)
        sms[0].try_push(req)
        cycles = 0
        while not channels[0]:
            fabric.step(sms, channels)
            cycles += 1
            assert cycles < 50
        min_hops = fabric.shape.width - 1 + fabric.shape.height - 1
        assert cycles >= min_hops

    def test_backpressure_holds_flits_in_network(self):
        fabric, sms, channels = self.make()
        channels[0] = VCBuffer(1, 1)
        channels[0].try_push(mem_request(0))  # full ejection buffer
        req = mem_request(channel=0)
        sms[0].try_push(req)
        for _ in range(30):
            fabric.step(sms, channels)
        assert fabric.in_flight() == 1  # parked inside the mesh

    def test_vc2_pim_does_not_block_mem(self):
        fabric, sms, channels = self.make(num_vcs=2)
        # Fill channel 0's PIM VC so PIM flits park in the mesh.
        assert channels[0].try_push(pim_request(0))
        blocked_pim = [pim_request(0) for _ in range(12)]
        mem = mem_request(0)
        buffer_order = blocked_pim[:2] + [mem] + blocked_pim[2:]
        for req in buffer_order:
            sms[0].try_push(req)
        for _ in range(60):
            fabric.step(sms, channels)
        # The MEM request reached its (separate) VC despite the PIM jam.
        assert len(channels[0].queue_for(mem)) == 1

    @settings(max_examples=20, deadline=None)
    @given(
        destinations=st.lists(st.integers(0, 3), min_size=1, max_size=24)
    )
    def test_conservation_property(self, destinations):
        """Every injected request is eventually ejected exactly once."""
        fabric, sms, channels = self.make(num_sms=4, num_channels=4)
        channels = [VCBuffer(64, 1) for _ in range(4)]
        pending = []
        for i, dest in enumerate(destinations):
            req = mem_request(dest)
            pending.append((dest, req))
            sms[i % 4].try_push(req)
        for _ in range(400):
            fabric.step(sms, channels)
            if all(not b for b in sms) and fabric.in_flight() == 0:
                break
        assert fabric.in_flight() == 0
        arrived = {}
        for i in range(4):
            items = []
            while True:
                request = channels[i].pop_next()
                if request is None:
                    break
                items.append(request)
            arrived[i] = items
        for dest, req in pending:
            assert req in arrived[dest]


class TestMeshSystem:
    def test_full_system_on_mesh(self):
        config = SystemConfig.scaled(num_channels=4, num_sms=4).replace(
            noc_topology="mesh"
        )
        system = GPUSystem(config, PolicySpec("F3FS"))
        system.add_kernel(
            GPUKernelProfile(name="mesh-gpu", accesses_per_warp=96), num_sms=2, loop=True
        )
        system.add_kernel(
            PIMStreamKernel(name="mesh-pim", elements_per_warp=96), num_sms=1, loop=True
        )
        result = system.run(max_cycles=500_000)
        assert result.all_completed
        assert system.mesh.average_hops() >= 1.0

    def test_mesh_slower_than_crossbar(self):
        """Multi-hop traversal adds latency vs the single-stage crossbar."""
        durations = {}
        for topology in ("crossbar", "mesh"):
            config = SystemConfig.scaled(num_channels=4, num_sms=4).replace(
                noc_topology=topology
            )
            system = GPUSystem(config, PolicySpec("FR-FCFS"))
            system.add_kernel(
                GPUKernelProfile(name="topo-gpu", accesses_per_warp=128, l2_reuse=0.0),
                num_sms=2,
            )
            result = system.run(max_cycles=500_000)
            assert result.all_completed
            durations[topology] = result.kernels[0].first_duration
        assert durations["mesh"] > durations["crossbar"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig.scaled().replace(noc_topology="torus")
