"""Tests for the DRAM refresh model and its controller integration."""

import pytest

from repro.config import SystemConfig
from repro.core.controller import MemoryController
from repro.core.policies import PolicySpec, make_policy
from repro.dram.channel import Channel
from repro.dram.refresh import RefreshTimer
from repro.dram.timings import DRAMTimings
from repro.pim.executor import PIMExecutor
from repro.request import Request, RequestType
from repro.sim.system import GPUSystem
from repro.workloads.synthetic import GPUKernelProfile


class TestRefreshTimer:
    def test_accrues_on_schedule(self):
        timer = RefreshTimer(trefi=100, trfc=10)
        assert timer.pending(50) == 0
        assert timer.pending(100) == 1
        assert timer.pending(350) == 3

    def test_perform_consumes_obligation(self):
        timer = RefreshTimer(trefi=100, trfc=10)
        assert timer.pending(250) == 2
        end = timer.perform(250)
        assert end == 260
        assert timer.pending(250) == 1
        assert timer.stats.refreshes_issued == 1

    def test_must_refresh_after_postponement_budget(self):
        timer = RefreshTimer(trefi=100, trfc=10, max_postponed=3)
        assert not timer.must_refresh(250)
        assert timer.must_refresh(300)

    def test_perform_without_obligation_raises(self):
        timer = RefreshTimer(trefi=100, trfc=10)
        with pytest.raises(RuntimeError):
            timer.perform(10)

    def test_disabled_timer(self):
        timer = RefreshTimer(trefi=100, trfc=10, enabled=False)
        assert timer.pending(1_000_000) == 0
        assert not timer.should_refresh(1_000_000)
        with pytest.raises(RuntimeError):
            timer.perform(1_000_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            RefreshTimer(trefi=0, trfc=10)
        with pytest.raises(ValueError):
            RefreshTimer(trefi=10, trfc=10, max_postponed=-1)

    def test_backlog_tracking(self):
        timer = RefreshTimer(trefi=100, trfc=10)
        timer.pending(500)
        assert timer.stats.max_backlog == 5


class TestControllerRefresh:
    def make_controller(self, trefi=200, trfc=20):
        timings = DRAMTimings(tREFI=trefi, tRFC=trfc)
        channel = Channel(0, 4, timings)
        pim = PIMExecutor(channel, fus_per_channel=2, rf_entries_per_bank=8)
        return MemoryController(
            channel, pim, make_policy("FR-FCFS"), refresh_enabled=True
        )

    def test_refresh_closes_rows(self):
        ctl = self.make_controller()
        req = Request(type=RequestType.MEM_LOAD, address=0)
        req.channel, req.bank, req.row, req.column = 0, 0, 3, 0
        ctl.enqueue(req, 0)
        cycle = 0
        while ctl.outstanding() and cycle < 10_000:
            ctl.pop_completed(cycle)
            ctl.tick(cycle)
            cycle += 1
        assert ctl.channel.banks[0].open_row == 3
        # Run past the postponement budget with idle queues: the
        # opportunistic path refreshes and precharges everything.
        for cycle in range(cycle, cycle + 250):
            ctl.tick(cycle)
        assert ctl.refresh.stats.refreshes_issued >= 1
        assert ctl.channel.banks[0].open_row is None

    def test_forced_refresh_blocks_issue(self):
        ctl = self.make_controller(trefi=50, trfc=30)
        # Keep the MEM queue loaded so only the forced path can fire.
        for i in range(8):
            req = Request(type=RequestType.MEM_LOAD, address=0)
            req.channel, req.bank, req.row, req.column = 0, i % 4, i, 0
            ctl.enqueue(req, 0)
        issued_during_refresh = 0
        refreshing = False
        for cycle in range(5_000):
            ctl.pop_completed(cycle)
            before = ctl.refresh.stats.refreshes_issued
            issued = ctl.tick(cycle)
            refreshing = cycle < ctl._refresh_until
            if refreshing and issued is not None:
                issued_during_refresh += 1
        assert ctl.refresh.stats.refreshes_issued >= 8  # forced repeatedly
        assert issued_during_refresh == 0


class TestSystemRefresh:
    def test_refresh_slows_execution(self):
        spec = GPUKernelProfile(name="refresh-test", accesses_per_warp=128,
                                compute_per_phase=5, l2_reuse=0.0)
        durations = {}
        for enabled in (False, True):
            config = SystemConfig.scaled(num_channels=4, num_sms=4).replace(
                refresh_enabled=enabled,
                timings=DRAMTimings(tREFI=400, tRFC=100),  # exaggerated
            )
            system = GPUSystem(config, PolicySpec("FR-FCFS"))
            system.add_kernel(spec, num_sms=2)
            result = system.run(max_cycles=500_000)
            assert result.all_completed
            durations[enabled] = result.kernels[0].first_duration
        assert durations[True] > durations[False]
