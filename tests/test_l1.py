"""Tests for the per-SM L1 data cache and its SM integration."""

import pytest

from repro.cache.l1 import L1Cache
from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.sim.system import GPUSystem
from repro.workloads.synthetic import GPUKernelProfile


class TestL1Cache:
    def test_cold_miss_then_hit_after_install(self):
        l1 = L1Cache(capacity_words=16, assoc=4)
        assert not l1.lookup_load(100)
        l1.install(100)
        assert l1.lookup_load(100)
        assert l1.stats.load_hits == 1
        assert l1.stats.load_misses == 1

    def test_lru_eviction(self):
        l1 = L1Cache(capacity_words=4, assoc=4)  # one set
        for addr in range(4):
            l1.install(addr * 4)  # same set (addresses % num_sets == 0)
        l1.lookup_load(0)  # refresh address 0
        l1.install(16)  # evicts LRU (address 4)
        assert l1.contains(0)
        assert not l1.contains(4)

    def test_store_never_allocates(self):
        l1 = L1Cache(capacity_words=16, assoc=4)
        l1.note_store(100)
        assert not l1.contains(100)
        assert l1.stats.stores == 1

    def test_install_idempotent(self):
        l1 = L1Cache(capacity_words=16, assoc=4)
        l1.install(5)
        l1.install(5)
        assert l1.stats.installs == 1

    def test_reset(self):
        l1 = L1Cache(capacity_words=16, assoc=4)
        l1.install(5)
        l1.reset()
        assert not l1.contains(5)
        assert l1.stats.accesses == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            L1Cache(capacity_words=2, assoc=4)
        with pytest.raises(ValueError):
            L1Cache(capacity_words=4, assoc=0)

    def test_hit_rate(self):
        l1 = L1Cache(capacity_words=16, assoc=4)
        l1.install(1)
        l1.lookup_load(1)
        l1.lookup_load(2)
        assert l1.stats.hit_rate == 0.5


class TestSMWithL1:
    def _run(self, l1_enabled):
        config = SystemConfig.scaled(num_channels=4, num_sms=4).replace(
            l1_enabled=l1_enabled
        )
        spec = GPUKernelProfile(
            name="l1-study", accesses_per_warp=256, l2_reuse=0.6,
            hot_words=16, compute_per_phase=5,
        )
        system = GPUSystem(config, PolicySpec("FR-FCFS"))
        system.add_kernel(spec, num_sms=2)
        result = system.run(max_cycles=500_000)
        assert result.all_completed
        return system, result

    def test_l1_filters_noc_traffic(self):
        _, without = self._run(l1_enabled=False)
        system, with_l1 = self._run(l1_enabled=True)
        assert with_l1.kernels[0].requests_injected < without.kernels[0].requests_injected
        hits = sum(sm.l1.stats.load_hits for sm in system.sms if sm.l1 is not None)
        assert hits > 0

    def test_l1_preserves_request_conservation(self):
        system, result = self._run(l1_enabled=True)
        assert all(v == 0 for v in system._kernel_inflight.values())

    def test_l1_disabled_means_no_cache(self):
        system, _ = self._run(l1_enabled=False)
        assert all(sm.l1 is None for sm in system.sms)
