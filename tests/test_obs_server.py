"""`repro.obs.server` under load and at the edges.

Thread-safety smoke (concurrent /status + /metrics + /journal readers
against a registry being mutated by a live publisher), /journal bounds,
and the friendly port-in-use failure (``PortInUseError``) both at the
server layer and through ``repro sweep --serve-status``.
"""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.obs import MetricsRegistry, StatusPublisher, validate_status
from repro.obs.server import JOURNAL_LIMIT, PortInUseError, StatusServer
from repro.store import ResultStore


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode()


class TestConcurrentReads:
    def test_readers_race_a_mutating_registry(self, tmp_path):
        """3 reader threads × all endpoints while a publisher mutates the
        registry and rewrites status.json: every response parses, every
        status document validates, nothing 500s."""
        registry = MetricsRegistry()
        publisher = StatusPublisher(
            tmp_path, total_cells=10_000, interval=0.0, registry=registry
        )
        store = ResultStore(tmp_path)
        for i in range(5):
            store.log_event("put", key=f"k{i}", label=f"cell-{i}")

        stop = threading.Event()
        mutator_error = []

        def mutate():
            try:
                while not stop.is_set():
                    publisher.record_completion(hit=False)
                    publisher.record_in_flight(
                        [{"label": "cell-x", "attempts": 1, "seconds": 0.1}]
                    )
            except Exception as exc:  # pragma: no cover - the assertion
                mutator_error.append(exc)

        errors = []

        def read(server_url):
            try:
                for _ in range(30):
                    status, body = _get(server_url + "/status")
                    assert status == 200
                    assert validate_status(json.loads(body)) == []
                    status, body = _get(server_url + "/metrics")
                    assert status == 200 and "sweep_cells_completed" in body
                    status, body = _get(server_url + "/journal?n=3")
                    assert status == 200 and len(json.loads(body)) == 3
            except Exception as exc:
                errors.append(exc)

        with StatusServer(tmp_path, port=0, registry=registry) as server:
            mutator = threading.Thread(target=mutate, daemon=True)
            readers = [
                threading.Thread(target=read, args=(server.url,), daemon=True)
                for _ in range(3)
            ]
            mutator.start()
            for reader in readers:
                reader.start()
            for reader in readers:
                reader.join(timeout=30)
                assert not reader.is_alive()
            stop.set()
            mutator.join(timeout=5)
        assert errors == []
        assert mutator_error == []


class TestJournalBounds:
    @pytest.fixture()
    def server(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(4):
            store.log_event("put", key=f"k{i}")
        with StatusServer(tmp_path, port=0) as server:
            yield server

    def test_n_zero_returns_empty_list(self, server):
        status, body = _get(server.url + "/journal?n=0")
        assert status == 200 and json.loads(body) == []

    def test_n_past_journal_length_returns_everything(self, server):
        status, body = _get(server.url + f"/journal?n={JOURNAL_LIMIT + 999}")
        assert status == 200
        events = json.loads(body)
        assert [e["key"] for e in events] == ["k0", "k1", "k2", "k3"]

    def test_negative_n_clamps_to_empty(self, server):
        status, body = _get(server.url + "/journal?n=-7")
        assert status == 200 and json.loads(body) == []

    def test_non_integer_n_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(server.url + "/journal?n=loads", timeout=5)
        assert info.value.code == 400
        assert "integer" in json.loads(info.value.read().decode())["error"]


class TestPortInUse:
    def test_port_in_use_raises_named_error(self, tmp_path):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(PortInUseError) as info:
                StatusServer(tmp_path, port=port)
            message = str(info.value)
            assert str(port) in message and "already in use" in message
            assert info.value.port == port
            # Still an OSError, so pre-existing handlers keep working.
            assert isinstance(info.value, OSError)
        finally:
            blocker.close()

    def test_free_port_still_binds(self, tmp_path):
        with StatusServer(tmp_path, port=0) as server:
            assert server.port > 0  # happy path unchanged by the guard

    def test_sweep_cli_reports_port_not_traceback(self, tmp_path):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(SystemExit) as info:
                cli_main(
                    [
                        "sweep",
                        "--gpus", "G17", "--pims", "P1",
                        "--policies", "FR-FCFS", "--vcs", "1",
                        "--cache-dir", str(tmp_path / "store"),
                        "--serve-status", str(port),
                    ]
                )
            assert str(port) in str(info.value)
        finally:
            blocker.close()

    def test_sweep_cli_serves_on_free_port(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--gpus", "G17", "--pims", "P2",
            "--policies", "FR-FCFS", "--vcs", "1",
            "--scale", "0.05", "--channels", "4",
            "--cache-dir", str(tmp_path / "store"),
            "--serve-status", "0",
        ]
        assert cli_main(argv) == 0
        assert "status endpoint: http://" in capsys.readouterr().err
