"""Write-ahead lease ledger: durability, torn tails, and corruption.

The ledger's contract (``repro.fabric.ledger``) is binary: replay
either reconstructs *exactly* the state the coordinator wrote ahead, or
it refuses with a structured diagnostic naming the byte offset — never
a silent wrong state.  The property-based tests cut a real ledger at
every possible byte offset (hypothesis over cut points) and assert that
dichotomy: a cut in the final line is a repairable crash-torn tail; a
cut that destroys an earlier record raises :class:`LedgerCorrupt`.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fabric import ledger as wal
from repro.fabric.ledger import FabricLedger, LedgerCorrupt, ledger_summary
from repro.store.fingerprint import checksum


def build_ledger(path):
    """A representative two-session ledger; returns the final replay state."""
    led = FabricLedger(path)
    led.replay()
    led.append(wal.OP_OPEN, epoch=1, code="deadbeef", cells=3)
    led.append(
        wal.OP_LEASE,
        epoch=1,
        lease_seq=1,
        key="k1",
        label="cell-1",
        lease_id="L00001-k1",
        worker="w0",
        attempt=1,
    )
    led.append(
        wal.OP_COMPLETE, epoch=1, key="k1", lease_id="L00001-k1", worker="w0"
    )
    led.append(
        wal.OP_LEASE,
        epoch=1,
        lease_seq=2,
        key="k2",
        label="cell-2",
        lease_id="L00002-k2",
        worker="w1",
        attempt=1,
    )
    led.append(
        wal.OP_RETRY, epoch=1, key="k2", kind="expired", attempts=1,
        not_before_wall=123.5,
    )
    led.append(
        wal.OP_QUARANTINE,
        epoch=1,
        key="k3",
        index=2,
        label="cell-3",
        kind="stall",
        message="livelock",
        attempts=3,
    )
    led.close()
    # Second session: recovery bumps the epoch, re-leases k2, drains.
    led = FabricLedger(path)
    led.replay()
    led.append(wal.OP_OPEN, epoch=2, code="deadbeef", cells=3)
    led.append(
        wal.OP_LEASE,
        epoch=2,
        lease_seq=3,
        key="k2",
        label="cell-2",
        lease_id="L00003-k2",
        worker="w2",
        attempt=2,
    )
    led.append(
        wal.OP_REJECT, epoch=2, key="k2", lease_id="L00002-k2",
        reason="stale-epoch",
    )
    led.append(wal.OP_DRAIN, epoch=2, source="SIGTERM")
    led.close()
    return FabricLedger(path).replay()


class TestReplayRoundTrip:
    def test_replay_reconstructs_exact_state(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        state = build_ledger(path)
        assert state.epoch == 2 and state.opens == 2
        assert state.records == 10 and state.lease_seq == 3
        assert not state.torn_tail
        assert state.rejects == 1
        assert state.draining is True and state.closed is None
        assert state.cells["k1"].state == "done"
        k2 = state.cells["k2"]
        assert k2.state == "leased"
        assert k2.lease_id == "L00003-k2" and k2.worker == "w2"
        assert k2.lease_epoch == 2 and k2.attempts == 2
        k3 = state.cells["k3"]
        assert k3.state == "failed"
        assert state.failures == [
            {
                "key": "k3",
                "index": 2,
                "label": "cell-3",
                "kind": "stall",
                "message": "livelock",
                "attempts": 3,
            }
        ]

    def test_retry_preserves_wall_clock_backoff(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        led = FabricLedger(path)
        led.replay()
        led.append(wal.OP_OPEN, epoch=1, code="c", cells=1)
        led.append(
            wal.OP_LEASE, epoch=1, lease_seq=1, key="k", label="l",
            lease_id="L1", worker="w", attempt=1,
        )
        led.append(
            wal.OP_RETRY, epoch=1, key="k", kind="expired", attempts=1,
            not_before_wall=9876.25,
        )
        led.close()
        cell = FabricLedger(path).replay().cells["k"]
        assert cell.state == "pending"
        assert cell.not_before_wall == 9876.25
        assert cell.lease_id is None

    def test_summary_rolls_up_for_operators(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        build_ledger(path)
        summary = ledger_summary(path)
        assert summary["epoch"] == 2 and summary["sessions"] == 2
        assert summary["cells"] == {"done": 1, "leased": 1, "failed": 1}
        assert [l["lease_id"] for l in summary["in_flight"]] == ["L00003-k2"]
        assert summary["draining"] is True and summary["closed"] is None
        assert summary["rejects"] == 1 and summary["torn_tail"] is False

    def test_empty_and_missing_ledger(self, tmp_path):
        state = FabricLedger(tmp_path / "absent.jsonl").replay()
        assert state.epoch == 0 and state.records == 0
        (tmp_path / "empty.jsonl").write_bytes(b"")
        assert FabricLedger(tmp_path / "empty.jsonl").replay().records == 0


class TestTornTail:
    def test_torn_tail_truncated_and_appendable(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        build_ledger(path)
        whole = path.read_bytes()
        path.write_bytes(whole[:-7])  # tear the final record mid-bytes
        led = FabricLedger(path)
        state = led.replay()
        assert state.torn_tail is True
        assert state.records == 9  # everything but the torn line
        assert state.draining is False  # the drain record was the torn one
        # The first append repairs the file: torn bytes gone, seq contiguous.
        led.append(wal.OP_OPEN, epoch=3, code="deadbeef", cells=3)
        led.close()
        healed = FabricLedger(path).replay()
        assert healed.torn_tail is False
        assert healed.epoch == 3 and healed.records == 10

    def test_missing_trailing_newline_is_not_torn(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        build_ledger(path)
        path.write_bytes(path.read_bytes().rstrip(b"\n"))
        led = FabricLedger(path)
        state = led.replay()
        assert state.records == 10 and not state.torn_tail
        # The next append starts on a fresh line, not glued to the tail.
        led.append(wal.OP_OPEN, epoch=3, code="deadbeef", cells=3)
        led.close()
        assert FabricLedger(path).replay().epoch == 3

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_every_cut_point_resumes_or_names_the_byte(self, tmp_path_factory, data):
        """The satellite property: truncate the WAL at *any* byte and
        recovery either resumes exactly (a torn tail — cut in the final
        line) or fails with a diagnostic naming the byte offset (cut
        that destroyed an earlier record).  Never a silent wrong state,
        and replay after repair never raises."""
        tmp_path = tmp_path_factory.mktemp("cuts")
        path = tmp_path / "ledger.jsonl"
        build_ledger(path)
        whole = path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(whole) - 1))
        path.write_bytes(whole[:cut])
        last_boundary = whole[:cut].rfind(b"\n") + 1  # start of the cut line
        state = FabricLedger(path).replay()
        # A cut can only ever tear the final line of the truncated file;
        # everything before the last newline replays verbatim.
        expected_whole_records = whole[:last_boundary].count(b"\n")
        next_newline = whole.find(b"\n", last_boundary)
        if cut == next_newline:
            # The cut removed exactly the trailing newline: the final
            # record is whole and replays; only the terminator is gone.
            assert state.records == expected_whole_records + 1
            assert not state.torn_tail
        elif cut == last_boundary:
            # Clean record boundary: nothing was torn at all.
            assert state.records == expected_whole_records
            assert not state.torn_tail
        else:
            # Mid-record cut: the partial final line is a torn tail.
            assert state.records == expected_whole_records
            assert state.torn_tail

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_mid_file_damage_names_the_offset(self, tmp_path_factory, data):
        """Damage *before* the tail (a lost or mangled middle line) is
        unrepairable: replay must raise LedgerCorrupt carrying the byte
        offset of the first bad line, not resume silently."""
        tmp_path = tmp_path_factory.mktemp("damage")
        path = tmp_path / "ledger.jsonl"
        build_ledger(path)
        lines = path.read_bytes().splitlines(keepends=True)
        victim = data.draw(st.integers(min_value=0, max_value=len(lines) - 2))
        flip = data.draw(st.sampled_from(["drop", "garble"]))
        if flip == "drop":
            del lines[victim]  # seq gap at the splice point
            bad_line = victim
        else:
            lines[victim] = b'{"seq": 0, "broken": true}\n'
            bad_line = victim
        path.write_bytes(b"".join(lines))
        with pytest.raises(LedgerCorrupt) as excinfo:
            FabricLedger(path).replay()
        err = excinfo.value
        assert err.offset == sum(len(l) for l in lines[:bad_line])
        assert err.line_no == bad_line + 1
        assert str(err.offset) in str(err)


class TestCorruption:
    def test_checksum_mismatch_detected(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        build_ledger(path)
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["worker"] = "tampered"  # checksum no longer matches
        lines[1] = json.dumps(record, sort_keys=True).encode() + b"\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(LedgerCorrupt, match="checksum mismatch"):
            FabricLedger(path).replay()

    def test_seq_gap_detected(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        led = FabricLedger(path)
        led.replay()
        led.append(wal.OP_OPEN, epoch=1, code="c", cells=1)
        led.append(wal.OP_DRAIN, epoch=1, source="x")
        led.append(wal.OP_CLOSE, epoch=1, state="aborted")
        led.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + lines[2])  # lose the middle record
        with pytest.raises(LedgerCorrupt, match="sequence gap"):
            FabricLedger(path).replay()

    def test_unknown_op_rejected_on_append_and_replay(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        led = FabricLedger(path)
        led.replay()
        with pytest.raises(ValueError, match="unknown ledger op"):
            led.append("invent", epoch=1)
        record = {"seq": 1, "op": "invent", "epoch": 1}
        record["check"] = checksum(record)
        path.write_bytes(json.dumps(record, sort_keys=True).encode() + b"\n")
        with pytest.raises(LedgerCorrupt, match="unknown op"):
            FabricLedger(path).replay()

    def test_ledger_summary_surfaces_corruption(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_bytes(b'{"not": "a record"}\n{"also": "bad"}\n')
        with pytest.raises(LedgerCorrupt) as excinfo:
            ledger_summary(path)
        assert excinfo.value.offset == 0 and excinfo.value.line_no == 1
