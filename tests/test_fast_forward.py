"""Bit-exact equivalence of the event-driven engine vs the naive loop.

The engine's fast-forward contract (docs/performance.md) promises that
jumping the clock over quiescent windows is unobservable: every skipped
cycle would have been a no-op.  These tests run the same scenario twice —
``fast_forward=True`` and ``False`` — and require the *entire* ``SimResult``
(durations, mode cycles, drain latencies, row outcomes, NoC rejects, ...)
to be identical, plus the timeline sample series when one is attached.

Scenarios cover both paper configurations (VC1/VC2), the headline
policies (FR-FCFS and F3FS) plus the two stateful time-driven policies
(BLISS blacklist clearing, Dyn-F3FS epoch adaptation), refresh on and
off, and the mesh topology.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.request import reset_request_ids
from repro.sim.system import GPUSystem
from repro.workloads import get_gpu_kernel, get_pim_kernel

MAX_CYCLES = 60_000


def _build(
    fast: bool,
    vcs: int = 1,
    policy: str = "FR-FCFS",
    refresh: bool = False,
    gpu: str = "G17",
    pim: str = "P1",
    loop_pim: bool = True,
    topology: str = "crossbar",
    timeline: bool = False,
) -> GPUSystem:
    reset_request_ids()
    config = SystemConfig.scaled(
        num_channels=4, num_sms=4, noc_queue_size=32, banks_per_channel=8
    )
    config = config.replace(
        num_virtual_channels=vcs, refresh_enabled=refresh, noc_topology=topology
    )
    system = GPUSystem(
        config, PolicySpec(policy), seed=1, scale=0.08, fast_forward=fast
    )
    system.add_kernel(get_gpu_kernel(gpu), num_sms=2)
    if pim is not None:
        system.add_kernel(get_pim_kernel(pim), num_sms=2, loop=loop_pim)
    if timeline:
        system.attach_timeline(interval=100)
    return system


SCENARIOS = {
    "vc1_frfcfs_corun": dict(vcs=1, policy="FR-FCFS"),
    "vc2_f3fs_corun": dict(vcs=2, policy="F3FS"),
    "vc1_refresh_gpu_only": dict(
        vcs=1, policy="FR-FCFS", refresh=True, pim=None, gpu="G10"
    ),
    "vc2_bliss_corun": dict(vcs=2, policy="BLISS"),
    "vc2_dynf3fs_corun": dict(vcs=2, policy="Dyn-F3FS"),
    "vc1_finite_corun_tail": dict(vcs=1, policy="FR-FCFS", gpu="G10", loop_pim=False),
    "vc2_mesh_corun": dict(vcs=2, policy="F3FS", topology="mesh"),
    "vc1_timeline_gpu_only": dict(
        vcs=1, policy="FR-FCFS", pim=None, gpu="G10", timeline=True
    ),
}


def _result_dict(system: GPUSystem):
    result = system.run(max_cycles=MAX_CYCLES)
    return dataclasses.asdict(result), system


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fast_forward_is_bit_identical(name):
    kwargs = SCENARIOS[name]
    naive, naive_system = _result_dict(_build(False, **kwargs))
    fast, fast_system = _result_dict(_build(True, **kwargs))
    assert fast == naive
    if kwargs.get("timeline"):
        naive_samples = [dataclasses.asdict(s) for s in naive_system.timeline.samples]
        fast_samples = [dataclasses.asdict(s) for s in fast_system.timeline.samples]
        assert fast_samples == naive_samples


def test_fast_forward_actually_skips_cycles():
    # The finite co-run leaves a quiescent tail inside the cycle horizon;
    # the fast engine must jump it rather than tick through it.
    system = _build(True, vcs=1, policy="FR-FCFS", gpu="G10", loop_pim=False)
    system.run(max_cycles=MAX_CYCLES, until_all_complete_once=False)
    assert system.cycles_skipped > 0
    assert system.steps_executed + system.cycles_skipped == system.cycle


def test_naive_mode_never_skips():
    system = _build(False, vcs=1, policy="FR-FCFS", gpu="G10", loop_pim=False)
    system.run(max_cycles=20_000, until_all_complete_once=False)
    assert system.cycles_skipped == 0
    assert system.steps_executed == system.cycle


def test_env_var_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_FAST_FORWARD", "0")
    assert _build(None).fast_forward is False
    monkeypatch.setenv("REPRO_FAST_FORWARD", "1")
    assert _build(None).fast_forward is True
    monkeypatch.delenv("REPRO_FAST_FORWARD")
    assert _build(None).fast_forward is True
    # The explicit constructor argument always wins over the environment.
    monkeypatch.setenv("REPRO_FAST_FORWARD", "0")
    assert _build(True).fast_forward is True


def test_refresh_statistics_survive_fast_forward():
    # Refresh issue counts are timing-sensitive: a drifted clock would
    # change how many refreshes fit in the run.
    kwargs = dict(vcs=1, policy="FR-FCFS", refresh=True, pim=None, gpu="G10")
    counts = []
    for fast in (False, True):
        system = _build(fast, **kwargs)
        system.run(max_cycles=MAX_CYCLES, until_all_complete_once=False)
        counts.append(
            tuple(c.refresh.stats.refreshes_issued for c in system.controllers)
        )
    assert counts[0] == counts[1]
