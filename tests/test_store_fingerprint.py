"""Property-based tests for the result-store fingerprint.

The fingerprint is the cache's correctness boundary: two invocations
that would simulate the same thing must derive the same key (else the
cache never hits), and any input difference that could change a result
must change the key (else the cache returns wrong answers).  These tests
pin both directions plus the process-independence that resumable sweeps
rely on.
"""

import inspect
import json
import subprocess
import sys
from dataclasses import fields, replace
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies import PAPER_POLICY_ORDER, PolicySpec, make_policy
from repro.experiments import ExperimentScale
from repro.experiments.parallel import GridTask, task_store_key
from repro.store import (
    CODE_VERSION_ENV,
    canonical_json,
    canonical_policy,
    canonicalize,
    code_version,
    fingerprint,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")

scales = st.builds(
    ExperimentScale,
    num_channels=st.sampled_from([2, 4, 8]),
    gpu_sms_full=st.integers(3, 10),
    gpu_sms_corun=st.integers(2, 8),
    pim_sms=st.integers(1, 2),
    noc_queue_size=st.sampled_from([16, 32, 64]),
    workload_scale=st.sampled_from([0.05, 0.1, 0.12, 0.25]),
    seed=st.integers(0, 7),
    max_cycles=st.sampled_from([100_000, 3_000_000]),
    starvation_factor=st.integers(5, 30),
    refresh_enabled=st.booleans(),
)

#: Per-field mutations guaranteed to stay inside ExperimentScale's and
#: SystemConfig's validation envelope.
SCALE_MUTATIONS = {
    "num_channels": lambda v: 4 if v != 4 else 8,
    "gpu_sms_full": lambda v: v + 1,
    "gpu_sms_corun": lambda v: v + 1,
    "pim_sms": lambda v: v + 1,
    "noc_queue_size": lambda v: v + 8,
    "workload_scale": lambda v: v + 0.01,
    "seed": lambda v: v + 1,
    "max_cycles": lambda v: v + 1,
    "starvation_factor": lambda v: v + 1,
    "refresh_enabled": lambda v: not v,
}


def grid_key(scale: ExperimentScale, policy: PolicySpec, num_vcs: int = 1) -> str:
    task = GridTask(
        gpu_id="G17",
        pim_id="P2",
        policy_name=policy.name,
        policy_params=tuple(sorted(policy.params.items())),
        num_vcs=num_vcs,
    )
    return task_store_key(scale, task)


class TestCanonicalization:
    def test_dict_insertion_order_irrelevant(self):
        a = {"alpha": 1, "beta": [1, 2], "gamma": {"x": 1.5, "y": 2.5}}
        b = {"gamma": {"y": 2.5, "x": 1.5}, "beta": [1, 2], "alpha": 1}
        assert fingerprint(a) == fingerprint(b)

    def test_set_order_irrelevant(self):
        assert fingerprint({"s": {3, 1, 2}}) == fingerprint({"s": {2, 3, 1}})
        assert fingerprint({"s": frozenset("cab")}) == fingerprint({"s": set("abc")})

    def test_list_order_significant(self):
        assert fingerprint([1, 2]) != fingerprint([2, 1])

    def test_non_string_keys(self):
        assert fingerprint({1: "a", 2: "b"}) == fingerprint({2: "b", 1: "a"})

    def test_numpy_scalars_canonicalize_as_python(self):
        np = pytest.importorskip("numpy")
        assert fingerprint({"x": np.int64(7)}) == fingerprint({"x": 7})
        assert fingerprint({"x": np.float64(0.5)}) == fingerprint({"x": 0.5})

    def test_nonfinite_floats_do_not_crash(self):
        assert fingerprint(float("inf")) != fingerprint(float("-inf"))
        assert fingerprint(float("nan")) == fingerprint(float("nan"))

    def test_unknown_types_fail_loud(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            canonicalize(Opaque())

    def test_dataclass_includes_class_name(self):
        # Two dataclasses with identical fields must not collide.
        scale = ExperimentScale()
        payload = canonicalize(scale)
        assert payload["__dataclass__"] == "ExperimentScale"

    @given(scale=scales)
    @settings(max_examples=25, deadline=None)
    def test_equal_scales_hash_equal(self, scale):
        assert fingerprint(scale) == fingerprint(replace(scale))

    @given(scale=scales)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_canonical_json_is_parseable_and_sorted(self, scale):
        doc = json.loads(canonical_json(scale))
        assert list(doc) == sorted(doc)


class TestKeySensitivity:
    def test_every_scale_field_mutation_changes_key(self):
        scale = ExperimentScale(num_channels=4, workload_scale=0.05)
        base = grid_key(scale, PolicySpec("FR-FCFS"))
        assert set(SCALE_MUTATIONS) == {f.name for f in fields(ExperimentScale)}
        for name, mutate in SCALE_MUTATIONS.items():
            mutated = replace(scale, **{name: mutate(getattr(scale, name))})
            assert grid_key(mutated, PolicySpec("FR-FCFS")) != base, name

    def test_task_identity_fields_change_key(self):
        scale = ExperimentScale(num_channels=4, workload_scale=0.05)
        base = GridTask("G17", "P2", "FR-FCFS", (), 1)
        variants = [
            GridTask("G19", "P2", "FR-FCFS", (), 1),
            GridTask("G17", "P1", "FR-FCFS", (), 1),
            GridTask("G17", "P2", "F3FS", (), 1),
            GridTask("G17", "P2", "FR-FCFS", (), 2),
        ]
        keys = {task_store_key(scale, v) for v in variants}
        assert task_store_key(scale, base) not in keys
        assert len(keys) == len(variants)

    @given(
        name=st.sampled_from(["F3FS", "FR-FCFS-Cap", "BLISS"]),
        value=st.integers(1, 512),
    )
    @settings(max_examples=25, deadline=None)
    def test_param_value_feeds_key(self, name, value):
        scale = ExperimentScale(num_channels=4, workload_scale=0.05)
        param = {
            "F3FS": "mem_cap",
            "FR-FCFS-Cap": "cap",
            "BLISS": "threshold",
        }[name]
        with_value = grid_key(scale, PolicySpec(name, **{param: value}))
        with_other = grid_key(scale, PolicySpec(name, **{param: value + 1}))
        assert with_value != with_other

    def test_code_version_feeds_key(self, monkeypatch):
        scale = ExperimentScale(num_channels=4, workload_scale=0.05)
        monkeypatch.setenv(CODE_VERSION_ENV, "v1")
        first = grid_key(scale, PolicySpec("FR-FCFS"))
        monkeypatch.setenv(CODE_VERSION_ENV, "v2")
        second = grid_key(scale, PolicySpec("FR-FCFS"))
        assert first != second


class TestPolicyDefaults:
    def test_default_vs_explicit_hash_equal(self):
        """PolicySpec(name) == PolicySpec(name, **all constructor defaults)."""
        scale = ExperimentScale(num_channels=4, workload_scale=0.05)
        for name in PAPER_POLICY_ORDER:
            factory = type(make_policy(name))
            defaults = {
                pname: parameter.default
                for pname, parameter in inspect.signature(factory.__init__).parameters.items()
                if pname != "self" and parameter.default is not inspect.Parameter.empty
            }
            implicit = grid_key(scale, PolicySpec(name))
            explicit = grid_key(scale, PolicySpec(name, **defaults))
            assert implicit == explicit, name

    def test_param_dict_order_irrelevant(self):
        a = canonical_policy("F3FS", {"mem_cap": 8, "pim_cap": 16})
        b = canonical_policy("F3FS", {"pim_cap": 16, "mem_cap": 8})
        assert fingerprint(a) == fingerprint(b)

    def test_unknown_policy_params_pass_through(self):
        payload = canonical_policy("no-such-policy", {"x": 1})
        assert payload == {"name": "no-such-policy", "params": {"x": 1}}


CHILD_SCRIPT = """
import json, sys
from repro.experiments import ExperimentScale
from repro.experiments.parallel import GridTask, task_store_key
from repro.store import fingerprint

scale = ExperimentScale(num_channels=4, workload_scale=0.05, seed=3)
task = GridTask("G17", "P2", "F3FS", (("mem_cap", 8),), 2)
payload = {"nested": {"b": [1, 2.5], "a": {"deep": True}}, "s": {3, 1, 2}}
print(json.dumps({"task": task_store_key(scale, task), "payload": fingerprint(payload)}))
"""


class TestCrossProcessStability:
    def test_keys_stable_across_processes_and_hash_seeds(self, monkeypatch):
        """No id()/set-iteration/hash-randomization leakage into keys."""
        monkeypatch.delenv(CODE_VERSION_ENV, raising=False)
        scale = ExperimentScale(num_channels=4, workload_scale=0.05, seed=3)
        task = GridTask("G17", "P2", "F3FS", (("mem_cap", 8),), 2)
        payload = {"nested": {"b": [1, 2.5], "a": {"deep": True}}, "s": {3, 1, 2}}
        expected = {
            "task": task_store_key(scale, task),
            "payload": fingerprint(payload),
        }
        import os

        for hash_seed in ("0", "4242"):
            env = {**os.environ, "PYTHONPATH": SRC, "PYTHONHASHSEED": hash_seed}
            env.pop(CODE_VERSION_ENV, None)
            output = subprocess.run(
                [sys.executable, "-c", CHILD_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout
            assert json.loads(output) == expected, f"PYTHONHASHSEED={hash_seed}"

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) >= 8
