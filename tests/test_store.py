"""Cache-safety tests for the content-addressed result store.

A cache that can return stale or corrupted data is worse than no cache:
these tests pin the failure modes down to misses, never crashes and
never wrong answers — stale code versions become unreachable keys,
truncated/tampered documents fail their checksum, and ``verify``/``gc``
surface and reap the debris.
"""

import json

import pytest

from repro.perf.counters import EngineCounters
from repro.request import Mode
from repro.sim.export import result_from_dict, result_to_dict
from repro.sim.results import KernelResult, SimResult
from repro.store import CODE_VERSION_ENV, ResultStore, fingerprint


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def put_sample(store, key="k" * 64, value=None):
    value = value if value is not None else {"cycles": 123, "fairness": 0.5}
    store.put(key, value, meta={"kind": "competitive", "label": "sample"})
    return key, value


class TestRoundtrip:
    def test_put_get(self, store):
        key, value = put_sample(store)
        assert store.get(key) == value
        assert store.stats.hits == 1
        assert store.stats.writes == 1

    def test_missing_is_a_miss(self, store):
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1

    def test_put_is_atomic_no_temp_left_behind(self, store):
        key, _ = put_sample(store)
        leftovers = [p for p in store.objects.rglob("*") if p.name.startswith(".")]
        assert leftovers == []

    def test_overwrite_same_content_is_fine(self, store):
        key, value = put_sample(store)
        store.put(key, value, meta={"kind": "competitive"})
        assert store.get(key) == value

    def test_journal_records_puts(self, store):
        put_sample(store)
        events = store.journal_entries()
        assert [e["event"] for e in events] == ["put"]
        assert events[0]["kind"] == "competitive"

    def test_read_disabled_misses_but_writes(self, tmp_path):
        store = ResultStore(tmp_path / "s", read_enabled=False)
        key, value = put_sample(store)
        assert store.get(key) is None
        assert store.stats.misses == 1
        # A reading store on the same root sees the write.
        assert ResultStore(tmp_path / "s").get(key) == value

    def test_counters_integration(self, tmp_path):
        counters = EngineCounters()
        store = ResultStore(tmp_path / "s", counters=counters)
        key, _ = put_sample(store)
        store.get(key, kind="competitive")
        store.get("0" * 64)
        assert counters.calls["store.writes"] == 1
        assert counters.calls["store.hits"] == 1
        assert counters.calls["store.misses"] == 1
        assert counters.calls["store.hits.competitive"] == 1
        # Count-only stages survive the snapshot/merge aggregation path.
        merged = EngineCounters()
        merged.merge_snapshot(counters.snapshot())
        assert merged.calls["store.hits"] == 1


class TestCorruption:
    def test_truncated_file_is_a_miss_not_a_crash(self, store):
        key, _ = put_sample(store)
        path = store._path(key)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(key) is None
        assert store.stats.corrupt == 1

    def test_tampered_value_fails_checksum(self, store):
        key, _ = put_sample(store)
        path = store._path(key)
        document = json.loads(path.read_text())
        document["value"]["fairness"] = 0.99  # checksum now disagrees
        path.write_text(json.dumps(document))
        assert store.get(key) is None
        assert store.stats.corrupt == 1

    def test_wrong_key_in_document_is_corrupt(self, store):
        key, value = put_sample(store)
        other = "f" * 64
        target = store._path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        store._path(key).rename(target)
        assert store.get(other) is None
        assert store.stats.corrupt == 1

    def test_verify_classifies_corrupt(self, store):
        key, _ = put_sample(store)
        put_sample(store, key="a" * 64)
        store._path(key).write_text("{not json")
        report = store.verify()
        assert len(report["ok"]) == 1
        assert len(report["corrupt"]) == 1
        assert report["corrupt"][0].key == key

    def test_gc_reaps_corrupt(self, store):
        key, _ = put_sample(store)
        store._path(key).write_text("")
        removed = store.gc()
        assert removed["corrupt"] == 1
        assert not store._path(key).exists()


class TestCodeVersionInvalidation:
    def test_new_code_version_changes_key_and_stales_old_entries(
        self, tmp_path, monkeypatch
    ):
        from repro.store import code_version

        monkeypatch.setenv(CODE_VERSION_ENV, "build-1")
        store = ResultStore(tmp_path / "s")
        key_v1 = fingerprint({"kind": "cell", "code": code_version()})
        store.put(key_v1, {"cycles": 1}, meta={"kind": "competitive"})
        assert store.get(key_v1) == {"cycles": 1}

        monkeypatch.setenv(CODE_VERSION_ENV, "build-2")
        payload_v2 = {"kind": "cell", "code": code_version()}
        key_v2 = fingerprint(payload_v2)
        assert key_v2 != key_v1  # old result is unreachable, not stale-served
        assert store.get(key_v2) is None

        # verify() flags the v1 entry as stale under the new code version...
        report = store.verify()
        assert [e.key for e in report["stale"]] == [key_v1]
        # ...and gc reaps it.
        assert store.gc() == {"stale": 1, "corrupt": 0}
        assert list(store.entries()) == []

    def test_schema_bump_is_stale(self, store, monkeypatch):
        key, _ = put_sample(store)
        path = store._path(key)
        document = json.loads(path.read_text())
        document["schema"] = 999
        path.write_text(json.dumps(document))
        assert store.get(key) is None  # stale schema never hits
        statuses = {e.key: e.status for e in store.entries()}
        assert statuses[key] == "stale"


class TestSimResultRoundtrip:
    def make_result(self):
        result = SimResult(
            cycles=5000,
            bank_level_parallelism=3.5,
            row_buffer_hit_rate=0.75,
            mode_switches=12,
            switches_to_pim=6,
            additional_conflicts_per_switch=1.25,
            mem_drain_latency_per_switch=40.5,
            mode_cycles={Mode.MEM: 3000, Mode.PIM: 2000},
            noc_rejects=17,
            telemetry={"hops": {"noc": {"p50": 12}}, "events": {"refresh": 3}},
        )
        result.kernels[0] = KernelResult(
            kernel_id=0, name="g", is_pim=False, first_duration=4000,
            completions=1, requests_injected=100, mc_arrivals=80,
            l2_accesses=90, l2_hits=30, dram_row_hits=50,
            dram_row_misses=20, dram_row_conflicts=10,
        )
        result.kernels[1] = KernelResult(kernel_id=1, name="p", is_pim=True)
        return result

    def test_exact_roundtrip(self):
        result = self.make_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_roundtrip_through_json_and_store(self, store):
        result = self.make_result()
        key = "b" * 64
        store.put(key, result_to_dict(result), meta={"kind": "standalone"})
        loaded = result_from_dict(store.get(key))
        assert loaded == result
        assert loaded.telemetry == result.telemetry
        assert loaded.mode_cycles[Mode.PIM] == 2000
