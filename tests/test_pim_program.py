"""Tests for the imperative PIM program builder."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.gpu.kernel import LaunchContext
from repro.pim.isa import PIMOpKind
from repro.pim.program import (
    PIMProgram,
    PIMProgramError,
    vector_add_program,
)
from repro.sim.system import GPUSystem


def make_ctx(config):
    return LaunchContext(
        mapper=config.mapper,
        num_channels=config.num_channels,
        banks_per_channel=config.banks_per_channel,
        num_sms=1,
        warps_per_sm=config.warps_per_sm,
        rng=np.random.default_rng(0),
    )


class TestBuilder:
    def test_vector_declaration_idempotent(self):
        program = PIMProgram()
        a1 = program.vector("a")
        a2 = program.vector("a")
        assert a1 is a2
        assert program.vector("b").role == 1

    def test_register_allocation(self):
        program = PIMProgram()
        a = program.vector("a")
        r1 = program.load(a)
        r2 = program.load(a)
        assert r1.index != r2.index

    def test_rejects_foreign_handles(self):
        p1, p2 = PIMProgram(), PIMProgram()
        a1 = p1.vector("a")
        with pytest.raises(PIMProgramError):
            p2.load(a1)
        r = p1.load(a1)
        with pytest.raises(PIMProgramError):
            p2.store(r, p2.vector("a"))

    def test_validation(self):
        empty = PIMProgram()
        with pytest.raises(PIMProgramError):
            empty.build(elements=8)
        no_store = PIMProgram()
        no_store.load(no_store.vector("a"))
        with pytest.raises(PIMProgramError):
            no_store.build(elements=8)
        program = vector_add_program()
        with pytest.raises(PIMProgramError):
            program.build(elements=0)

    def test_too_many_registers_rejected(self):
        program = PIMProgram()
        a = program.vector("a")
        registers = [program.load(a) for _ in range(9)]
        program.store(registers[0], a)
        with pytest.raises(PIMProgramError):
            program.validate(rf_entries_per_bank=8)


class TestCompiledKernel:
    def test_spec_metadata(self):
        spec = vector_add_program().build(elements=64)
        assert spec.kind == "pim"
        assert spec.num_operands == 3
        assert spec.registers_used == 1

    def test_generates_block_structured_stream(self):
        config = SystemConfig.scaled(num_channels=4, num_sms=4)
        spec = vector_add_program().build(elements=16)
        ctx = make_ctx(config)
        phases = list(spec.warp_program(ctx, 0, 0))
        # 16 elements / block 8 -> 2 groups x 3 ops = 6 phases.
        assert len(phases) == 6
        for phase in phases:
            kinds = {r.pim_op.kind for r in phase.requests}
            assert len(kinds) == 1  # one op kind per block
            rows = {r.row for r in phase.requests}
            assert len(rows) <= 2

    def test_register_blocking_respects_rf(self):
        """Two-register programs halve the block size."""
        program = PIMProgram("two-reg")
        a, b, c = program.vector("a"), program.vector("b"), program.vector("c")
        r1 = program.load(a)
        r2 = program.load(b)
        program.store(r1, c)
        program.store(r2, c)
        spec = program.build(elements=8)
        config = SystemConfig.scaled(num_channels=4, num_sms=4)
        phases = list(spec.warp_program(make_ctx(config), 0, 0))
        for phase in phases:
            assert len(phase.requests) <= 4  # 8 RF entries / 2 registers
            for request in phase.requests:
                assert request.pim_op.dst < 8

    def test_functional_vector_add(self):
        """The built program computes correct sums through the full system."""
        config = SystemConfig.scaled(num_channels=4, num_sms=4)
        program = vector_add_program()
        spec = program.build(elements=16)
        system = GPUSystem(config, PolicySpec("FCFS"), functional=True)
        ctx = make_ctx(config)
        a, b, c = (spec.vectors[name] for name in ("a", "b", "c"))
        for channel in range(config.num_channels):
            for bank in range(config.banks_per_channel):
                for element in range(16):
                    row_a, col_a = spec.vector_location(ctx, a, element)
                    row_b, col_b = spec.vector_location(ctx, b, element)
                    system.store.write(channel, bank, row_a, col_a, float(element))
                    system.store.write(channel, bank, row_b, col_b, 100.0)
        system.add_kernel(spec, num_sms=1)
        result = system.run(max_cycles=200_000)
        assert result.all_completed
        for channel in range(config.num_channels):
            for bank in range(config.banks_per_channel):
                for element in range(16):
                    row_c, col_c = spec.vector_location(ctx, c, element)
                    value = system.store.read(channel, bank, row_c, col_c)
                    assert value == pytest.approx(element + 100.0)

    def test_functional_daxpy(self):
        """y <- y + x (via MAC with multiplier preloaded as 1... use ADD)."""
        config = SystemConfig.scaled(num_channels=4, num_sms=4)
        program = PIMProgram("saxpy-ish")
        x, y = program.vector("x"), program.vector("y")
        register = program.load(x)
        register = program.mul(register, x)  # x^2
        register = program.add(register, y)  # x^2 + y
        program.store(register, y)
        spec = program.build(elements=8)
        system = GPUSystem(config, PolicySpec("FCFS"), functional=True)
        ctx = make_ctx(config)
        for channel in range(config.num_channels):
            for bank in range(config.banks_per_channel):
                for element in range(8):
                    row_x, col_x = spec.vector_location(ctx, spec.vectors["x"], element)
                    row_y, col_y = spec.vector_location(ctx, spec.vectors["y"], element)
                    system.store.write(channel, bank, row_x, col_x, 3.0)
                    system.store.write(channel, bank, row_y, col_y, 5.0)
        system.add_kernel(spec, num_sms=1)
        assert system.run(max_cycles=200_000).all_completed
        row_y, col_y = spec.vector_location(ctx, spec.vectors["y"], 0)
        assert system.store.read(0, 0, row_y, col_y) == pytest.approx(14.0)  # 9 + 5
