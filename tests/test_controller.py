"""Tests for the memory controller's queueing and mode-switch machinery."""

import pytest

from repro.core.controller import MemoryController
from repro.core.policies import make_policy
from repro.dram.channel import Channel
from repro.dram.timings import DRAMTimings
from repro.pim.executor import PIMExecutor
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Mode, Request, RequestType


def make_controller(policy_name="FCFS", num_banks=4, **policy_params):
    channel = Channel(0, num_banks, DRAMTimings())
    pim_exec = PIMExecutor(channel, fus_per_channel=num_banks // 2, rf_entries_per_bank=8)
    policy = make_policy(policy_name, **policy_params)
    return MemoryController(channel, pim_exec, policy, mem_queue_size=8, pim_queue_size=8)


def mem_request(bank=0, row=0, column=0, kernel_id=0):
    req = Request(type=RequestType.MEM_LOAD, address=0, kernel_id=kernel_id)
    req.channel, req.bank, req.row, req.column = 0, bank, row, column
    return req


def pim_request(row=0, column=0, kernel_id=1):
    req = Request(
        type=RequestType.PIM, address=0, kernel_id=kernel_id, pim_op=PIMOp(PIMOpKind.LOAD)
    )
    req.channel, req.bank, req.row, req.column = 0, 0, row, column
    return req


def drive(ctl, max_cycles=20_000):
    """Tick until all queued work completes; returns completions in order."""
    completed = []
    for cycle in range(max_cycles):
        completed.extend(ctl.pop_completed(cycle))
        ctl.tick(cycle)
        if ctl.outstanding() == 0:
            ctl.finalize(cycle)
            return completed, cycle
    raise AssertionError("controller did not drain")


class TestEnqueue:
    def test_accepts_until_full(self):
        ctl = make_controller()
        for i in range(8):
            assert ctl.enqueue(mem_request(bank=i % 4), cycle=0)
        assert not ctl.enqueue(mem_request(), cycle=0)
        assert ctl.stats.mem_rejected == 1

    def test_pim_queue_separate(self):
        ctl = make_controller()
        for _ in range(8):
            assert ctl.enqueue(pim_request(), cycle=0)
        assert not ctl.enqueue(pim_request(), cycle=0)
        assert ctl.enqueue(mem_request(), cycle=0)  # MEM queue unaffected

    def test_sequence_numbers_monotonic(self):
        ctl = make_controller()
        a, b, c = mem_request(), pim_request(), mem_request()
        for r in (a, b, c):
            ctl.enqueue(r, cycle=0)
        assert a.mc_seq < b.mc_seq < c.mc_seq

    def test_arrival_stats(self):
        ctl = make_controller()
        ctl.enqueue(mem_request(kernel_id=3), cycle=0)
        ctl.enqueue(pim_request(kernel_id=4), cycle=0)
        assert ctl.stats.mem_arrivals == 1
        assert ctl.stats.pim_arrivals == 1
        assert ctl.stats.kernel_mem_arrivals[3] == 1
        assert ctl.stats.kernel_pim_arrivals[4] == 1


class TestModeSwitching:
    def test_starts_in_mem_mode(self):
        ctl = make_controller()
        assert ctl.mode is Mode.MEM

    def test_pim_request_triggers_switch(self):
        ctl = make_controller()
        ctl.enqueue(pim_request(), cycle=0)
        drive(ctl)
        assert ctl.mode is Mode.PIM
        assert ctl.stats.switches == 1
        assert ctl.stats.switches_to_pim == 1

    def test_switch_waits_for_mem_drain(self):
        ctl = make_controller("FCFS")
        mem = mem_request(bank=0, row=0)
        ctl.enqueue(mem, cycle=0)
        ctl.tick(0)  # issues the MEM request
        ctl.enqueue(pim_request(), cycle=1)
        ctl.tick(1)  # policy wants to switch; drain begins
        assert ctl.is_switching
        # The PIM request must not issue before the MEM request completes.
        drain_cycle = ctl.channel.drain_complete_cycle()
        for cycle in range(2, drain_cycle):
            ctl.pop_completed(cycle)
            ctl.tick(cycle)
            assert ctl.stats.pim_issued == 0
        completed, _ = drive(ctl)
        assert ctl.stats.pim_issued == 1
        record = ctl.stats.switch_records[0]
        assert record.direction is Mode.PIM
        assert record.drain_latency > 0

    def test_switch_records_idle_bank_cycles(self):
        ctl = make_controller("FCFS")
        # Two banks: one short row hit chain, one long conflict, so one
        # bank idles while the other drains.
        ctl.enqueue(mem_request(bank=0, row=0), cycle=0)
        ctl.enqueue(mem_request(bank=1, row=0), cycle=0)
        ctl.enqueue(mem_request(bank=1, row=1), cycle=0)
        ctl.enqueue(pim_request(), cycle=0)
        drive(ctl)
        record = next(r for r in ctl.stats.switch_records if r.direction is Mode.PIM)
        assert record.idle_bank_cycles > 0

    def test_additional_conflict_attribution(self):
        ctl = make_controller("FCFS")
        # Open row 3 on bank 0, run PIM on row 9, then return to row 3.
        ctl.enqueue(mem_request(bank=0, row=3), cycle=0)
        completed, cycle = drive(ctl)
        ctl.enqueue(pim_request(row=9), cycle=cycle)
        completed, cycle = drive(ctl)
        ctl.enqueue(mem_request(bank=0, row=3), cycle=cycle)
        drive(ctl)
        assert ctl.stats.additional_conflicts == 1

    def test_no_conflict_attribution_for_other_rows(self):
        ctl = make_controller("FCFS")
        ctl.enqueue(mem_request(bank=0, row=3), cycle=0)
        completed, cycle = drive(ctl)
        ctl.enqueue(pim_request(row=9), cycle=cycle)
        completed, cycle = drive(ctl)
        # Returning to a *different* row is a conflict, but not switch-caused.
        ctl.enqueue(mem_request(bank=0, row=5), cycle=cycle)
        drive(ctl)
        assert ctl.stats.additional_conflicts == 0

    def test_mode_cycle_accounting(self):
        ctl = make_controller("FCFS")
        ctl.enqueue(mem_request(), cycle=0)
        ctl.enqueue(pim_request(), cycle=0)
        completed, cycle = drive(ctl)
        total = sum(ctl.stats.mode_cycles.values())
        assert total == cycle
        assert ctl.stats.mode_cycles[Mode.MEM] > 0


class TestServiceOrder:
    def test_fcfs_preserves_order(self):
        ctl = make_controller("FCFS")
        reqs = [mem_request(bank=i % 4, row=i) for i in range(6)]
        for r in reqs:
            ctl.enqueue(r, cycle=0)
        completed, _ = drive(ctl)
        issued_order = sorted(reqs, key=lambda r: r.cycle_issued)
        assert [r.id for r in issued_order] == [r.id for r in reqs]

    def test_pim_always_fcfs(self):
        ctl = make_controller("FR-FCFS")
        reqs = [pim_request(row=i // 2, column=i % 2) for i in range(6)]
        for r in reqs:
            ctl.enqueue(r, cycle=0)
        drive(ctl)
        issue_cycles = [r.cycle_issued for r in reqs]
        assert issue_cycles == sorted(issue_cycles)

    def test_conservation(self):
        """Every enqueued request is eventually completed exactly once."""
        ctl = make_controller("FR-FCFS")
        reqs = [mem_request(bank=i % 4, row=i % 3) for i in range(8)]
        reqs += [pim_request(row=i) for i in range(4)]
        for r in reqs:
            ctl.enqueue(r, cycle=0)
        completed, _ = drive(ctl)
        assert sorted(r.id for r in completed) == sorted(r.id for r in reqs)
        assert all(r.cycle_completed >= 0 for r in reqs)


class TestPolicyValidation:
    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy("nope")

    def test_switch_to_same_mode_rejected(self):
        ctl = make_controller()
        with pytest.raises(ValueError):
            ctl._begin_switch(Mode.MEM, 0)
