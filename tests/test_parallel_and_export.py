"""Tests for the parallel grid runner and result export."""

import csv
import json

import pytest

from repro.core.policies import PolicySpec
from repro.experiments import ExperimentScale
from repro.experiments.parallel import GridTask, make_tasks, run_grid_parallel
from repro.sim.export import (
    load_result_json,
    result_to_dict,
    save_kernels_csv,
    save_result_json,
    save_rows_csv,
)
from repro.sim.results import KernelResult, SimResult

TINY = ExperimentScale(
    num_channels=4,
    gpu_sms_full=4,
    gpu_sms_corun=3,
    pim_sms=1,
    workload_scale=0.05,
    starvation_factor=10,
)


class TestMakeTasks:
    def test_grid_size(self):
        tasks = make_tasks(
            ["G17", "G19"], ["P1"], [PolicySpec("F3FS"), PolicySpec("FCFS")], (1, 2)
        )
        assert len(tasks) == 2 * 1 * 2 * 2

    def test_tasks_are_picklable(self):
        import pickle

        task = make_tasks(["G17"], ["P1"], [PolicySpec("F3FS", mem_cap=8)])[0]
        clone = pickle.loads(pickle.dumps(task))
        assert clone.policy.params == {"mem_cap": 8}


class TestRunGrid:
    def test_serial_worker(self):
        tasks = make_tasks(["G17"], ["P2"], [PolicySpec("F3FS")], (2,))
        outcomes = run_grid_parallel(TINY, tasks, max_workers=1)
        assert len(outcomes) == 1
        assert outcomes[0].gpu_id == "G17"
        assert outcomes[0].throughput > 0

    def test_parallel_workers_match_serial(self):
        tasks = make_tasks(["G17"], ["P1", "P2"], [PolicySpec("FR-FCFS")], (2,))
        serial = run_grid_parallel(TINY, tasks, max_workers=1)
        parallel = run_grid_parallel(TINY, tasks, max_workers=2)
        assert [o.gpu_speedup for o in serial] == [o.gpu_speedup for o in parallel]
        assert [o.pim_speedup for o in serial] == [o.pim_speedup for o in parallel]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_grid_parallel(TINY, [], max_workers=0)


def make_result():
    result = SimResult(cycles=1000)
    result.kernels[0] = KernelResult(
        kernel_id=0, name="a", is_pim=False, first_duration=500,
        requests_injected=100, mc_arrivals=60, l2_accesses=90, l2_hits=30,
        dram_row_hits=40, dram_row_misses=10, dram_row_conflicts=10,
    )
    result.kernels[1] = KernelResult(kernel_id=1, name="b", is_pim=True, first_duration=250)
    return result


class TestExport:
    def test_json_roundtrip(self, tmp_path):
        result = make_result()
        path = tmp_path / "result.json"
        save_result_json(result, path)
        loaded = load_result_json(path)
        assert loaded["cycles"] == 1000
        assert len(loaded["kernels"]) == 2
        assert loaded["kernels"][0]["row_buffer_hit_rate"] == pytest.approx(40 / 60)

    def test_dict_is_json_serializable(self):
        json.dumps(result_to_dict(make_result()))

    def test_kernels_csv(self, tmp_path):
        path = tmp_path / "kernels.csv"
        save_kernels_csv(make_result(), path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["name"] == "a"
        assert int(rows[1]["first_duration"]) == 250

    def test_rows_csv_union_of_keys(self, tmp_path):
        path = tmp_path / "rows.csv"
        save_rows_csv([{"a": 1}, {"b": 2}], path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert set(rows[0].keys()) == {"a", "b"}

    def test_rows_csv_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            save_rows_csv([], tmp_path / "x.csv")
