"""Tests for the campaign-observability surface (PR: live telemetry).

Four claims are covered:

* **Registry** — counters/gauges/histograms are get-or-create by name,
  type collisions fail loudly, and both export formats (JSON snapshot,
  Prometheus text exposition 0.0.4) carry the registered values.
* **Heartbeat** — ``StatusPublisher`` documents pass ``validate_status``
  through every state transition, land atomically as ``status.json``,
  and a sweep with a store directory leaves a final ``complete`` (or
  ``aborted``) document behind even when every cell is a warm cache hit.
* **Endpoint** — ``StatusServer`` serves ``/status``, ``/metrics`` and
  ``/journal`` off a daemon thread; ``repro status`` renders the same
  document from the CLI.
* **Stage profiler** — wrapping the per-event bodies is observationally
  transparent (bit-identical simulation) and produces a ranked table.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.core.policies import PolicySpec
from repro.experiments import ExperimentScale, run_sweep
from repro.experiments.parallel import make_tasks
from repro.obs import (
    MetricsRegistry,
    StatusPublisher,
    StatusServer,
    get_registry,
    read_status,
    status_path,
    validate_status,
)
from repro.obs.metrics import prometheus_name
from repro.store import ResultStore

TINY = ExperimentScale(
    num_channels=4,
    gpu_sms_full=4,
    gpu_sms_corun=3,
    pim_sms=1,
    workload_scale=0.05,
    starvation_factor=10,
)


def tiny_tasks():
    return make_tasks(["G17"], ["P1"], [PolicySpec("FR-FCFS")], (1,))


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        counter = reg.counter("cells.done", "cells")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        gauge = reg.gauge("in.flight")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2
        hist = reg.histogram("interval.ms", "cadence")
        for value in (10, 20, 4000):
            hist.add(value)
        assert hist.total == 3

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a", "help ignored on re-get")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").add(100)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1 and hist["min"] == 100
        json.dumps(snap)  # JSON-friendly by construction

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert reg.counter("c").value == 0  # fresh object after reset

    def test_prometheus_name_mangling(self):
        assert prometheus_name("sweep.cells.completed") == "sweep_cells_completed"
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("a:b_c") == "a:b_c"

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("sweep.cells.completed", "cells done").inc(7)
        reg.gauge("sweep.workers.in_flight").set(2)
        hist = reg.histogram("sweep.cell_interval_ms", "cadence")
        for value in (100, 200, 300, 400):
            hist.add(value)
        text = reg.render_prometheus()
        assert "# HELP sweep_cells_completed cells done" in text
        assert "# TYPE sweep_cells_completed counter" in text
        assert "sweep_cells_completed 7" in text
        assert "# TYPE sweep_workers_in_flight gauge" in text
        assert "# TYPE sweep_cell_interval_ms summary" in text
        assert 'sweep_cell_interval_ms{quantile="0.5"}' in text
        assert "sweep_cell_interval_ms_count 4" in text
        # _sum must equal mean * count as rendered.
        summary = hist.to_dict()
        assert f"sweep_cell_interval_ms_sum {summary['mean'] * 4!r}" in text
        assert text.endswith("\n")

    def test_default_registry_is_singleton(self):
        assert get_registry() is get_registry()


# ---------------------------------------------------------------------------
# StatusPublisher / validate_status
# ---------------------------------------------------------------------------


class TestStatusPublisher:
    def make(self, tmp_path, **kwargs):
        kwargs.setdefault("interval", 0.0)  # publish on every feed in tests
        return StatusPublisher(tmp_path, total_cells=4, registry=MetricsRegistry(), **kwargs)

    def test_initial_document_valid_and_on_disk(self, tmp_path):
        publisher = self.make(tmp_path)
        assert status_path(tmp_path).exists()
        doc = read_status(tmp_path)
        assert validate_status(doc) == []
        assert doc["state"] == "running"
        assert doc["cells"] == {
            "total": 4, "completed": 0, "hits": 0, "misses": 0, "failed": 0,
        }
        assert doc["eta_seconds"] is None  # no throughput signal yet
        assert publisher.registry.snapshot()["counters"]["sweep.cells.completed"] == 0

    def test_progress_and_finish(self, tmp_path):
        publisher = self.make(tmp_path)
        publisher.record_completion(hit=True)
        publisher.record_completion(hit=False)
        publisher.record_retry({"kind": "retry", "label": "x"})
        publisher.record_in_flight([{"label": "G17|P1|FR-FCFS|vc1", "seconds": 0.5}])
        doc = read_status(tmp_path)
        assert validate_status(doc) == []
        assert doc["cells"]["completed"] == 2
        assert doc["cells"]["hits"] == 1 and doc["cells"]["misses"] == 1
        assert doc["retries"] == 1
        assert doc["workers"]["in_flight"][0]["label"] == "G17|P1|FR-FCFS|vc1"
        counters = doc["metrics"]["counters"]
        assert counters["sweep.cells.completed"] == 2
        assert counters["sweep.cells.retries"] == 1
        # Second completion recorded an inter-completion interval sample.
        assert doc["metrics"]["histograms"]["sweep.cell_interval_ms"]["count"] == 1
        publisher.finish("complete")
        doc = read_status(tmp_path)
        assert doc["state"] == "complete"
        assert doc["workers"]["in_flight"] == []
        assert doc["eta_seconds"] == 0.0

    def test_quarantine_and_abort(self, tmp_path):
        publisher = self.make(tmp_path)
        publisher.record_quarantine(
            {"label": "G17|P1|F3FS|vc2", "kind": "crash", "attempts": 3, "message": "boom"}
        )
        publisher.finish("aborted")
        doc = read_status(tmp_path)
        assert validate_status(doc) == []
        assert doc["state"] == "aborted"
        assert doc["cells"]["failed"] == 1
        assert doc["quarantined"][0]["label"] == "G17|P1|F3FS|vc2"
        assert doc["quarantined"][0]["kind"] == "crash"

    def test_sync_retries_is_monotone(self, tmp_path):
        publisher = self.make(tmp_path)
        publisher.sync_retries(3)
        publisher.sync_retries(2)  # never goes backwards
        publisher.sync_retries(5)
        assert publisher.retries == 5
        counters = publisher.registry.snapshot()["counters"]
        assert counters["sweep.cells.retries"] == 5

    def test_throttle_skips_writes_but_force_lands(self, tmp_path):
        clock = [100.0]
        publisher = StatusPublisher(
            tmp_path, total_cells=2, registry=MetricsRegistry(),
            interval=10.0, clock=lambda: clock[0],
        )
        clock[0] += 1.0  # inside the throttle window
        publisher.record_completion(hit=False)
        assert read_status(tmp_path)["cells"]["completed"] == 0  # throttled
        publisher.finish("complete")  # forced
        assert read_status(tmp_path)["cells"]["completed"] == 1

    def test_finish_rejects_unknown_state(self, tmp_path):
        with pytest.raises(ValueError):
            self.make(tmp_path).finish("exploded")

    def test_validate_rejects_malformed(self):
        assert validate_status("not a dict")
        assert validate_status({}) != []
        bad = {
            "schema": 1, "state": "running", "started_at": 0, "updated_at": 1,
            "cells": {"total": 2, "completed": 2, "hits": 0, "misses": 1, "failed": 0},
            "throughput_cells_per_sec": 0.0, "eta_seconds": None, "shard": None,
            "workers": {"max": 1, "in_flight": []}, "retries": 0,
            "quarantined": [], "metrics": {},
        }
        errors = validate_status(bad)
        assert errors == ["cells.completed must equal cells.hits + cells.misses"]

    def test_read_status_missing(self, tmp_path):
        assert read_status(tmp_path / "never") is None

    def test_read_status_retries_through_replace_window(self, tmp_path):
        """Regression: a reader racing the atomic replace (file briefly
        missing or torn on non-POSIX filesystems) must retry, not
        misreport a live sweep as statusless."""
        from repro.obs.status import status_path

        good = StatusPublisher(tmp_path / "donor", total_cells=1).document()
        path = status_path(tmp_path)
        path.parent.mkdir(exist_ok=True)
        path.write_text('{"torn": ')  # half-written document

        def heal(_delay):
            path.write_text(json.dumps(good))

        doc = read_status(tmp_path, attempts=3, _sleep=heal)
        assert doc is not None and validate_status(doc) == []

    def test_read_status_gives_up_after_attempts(self, tmp_path):
        from repro.obs.status import status_path

        status_path(tmp_path).write_text("{never json")
        sleeps = []
        assert read_status(tmp_path, attempts=3, _sleep=sleeps.append) is None
        assert len(sleeps) == 2  # attempts - 1 pauses, then give up


# ---------------------------------------------------------------------------
# StatusServer endpoints
# ---------------------------------------------------------------------------


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


class TestStatusServer:
    def test_endpoints(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("sweep.cells.completed", "done").inc(2)
        store = ResultStore(tmp_path)
        store.log_event("put", key="abc", label="G17|P1|FR-FCFS|vc1")
        with StatusServer(tmp_path, port=0, registry=reg) as server:
            # No heartbeat yet: /status answers 503 with a sentinel body.
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(server.url + "/status", timeout=5)
            assert info.value.code == 503
            assert json.loads(info.value.read().decode())["state"] == "unknown"

            StatusPublisher(tmp_path, total_cells=1, registry=reg)
            status, ctype, body = _get(server.url + "/status")
            assert status == 200 and "application/json" in ctype
            assert validate_status(json.loads(body)) == []

            status, ctype, body = _get(server.url + "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain") and "version=0.0.4" in ctype
            assert "sweep_cells_completed 2" in body

            status, _, body = _get(server.url + "/journal?n=5")
            assert status == 200
            events = json.loads(body)
            assert events and events[0]["event"] == "put"

            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(server.url + "/nope", timeout=5)
            assert info.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(server.url + "/journal?n=many", timeout=5)
            assert info.value.code == 400

    def test_ephemeral_port_and_close(self, tmp_path):
        server = StatusServer(tmp_path, port=0)
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"
        server.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(server.url + "/status", timeout=1)


# ---------------------------------------------------------------------------
# Sweep integration: heartbeat + warm-hit finalization + CLI
# ---------------------------------------------------------------------------


class TestSweepHeartbeat:
    def test_cold_then_warm_sweep_publishes_and_journals(self, tmp_path, capsys):
        store_dir = str(tmp_path)
        tasks = tiny_tasks()

        report = run_sweep(TINY, tasks, store_dir=store_dir, status_interval=0.0)
        assert report.misses == 1
        doc = read_status(store_dir)
        assert validate_status(doc) == []
        assert doc["state"] == "complete"
        assert doc["cells"]["completed"] == 1 and doc["cells"]["misses"] == 1
        # The embedded metrics snapshot comes from the process-wide
        # registry (Prometheus counters are process-lifetime, and other
        # sweeps in this test session feed the same registry), so assert
        # presence and a floor rather than an exact per-sweep count.
        assert doc["metrics"]["counters"]["sweep.cells.misses"] >= 1

        # Warm resume: every cell is a cache hit, yet the heartbeat and the
        # journal summary still land (the "silent 100%-hit resume" fix).
        report = run_sweep(TINY, tasks, store_dir=store_dir, status_interval=0.0)
        assert report.hits == 1 and report.misses == 0
        doc = read_status(store_dir)
        assert doc["state"] == "complete"
        assert doc["cells"]["hits"] == 1
        summaries = [
            e for e in ResultStore(store_dir).journal_entries()
            if e.get("event") == "sweep_summary"
        ]
        assert len(summaries) == 2
        assert all(s["state"] == "complete" for s in summaries)
        assert summaries[-1]["hits"] == 1 and summaries[-1]["misses"] == 0

    def test_aborted_sweep_finalizes_status(self, tmp_path):
        from repro.experiments import SweepAborted

        store_dir = str(tmp_path)
        with pytest.raises(SweepAborted):
            run_sweep(
                TINY, tiny_tasks(), store_dir=store_dir,
                abort_after=0, status_interval=0.0,
            )
        doc = read_status(store_dir)
        assert validate_status(doc) == []
        assert doc["state"] == "aborted"
        summaries = [
            e for e in ResultStore(store_dir).journal_entries()
            if e.get("event") == "sweep_summary"
        ]
        assert summaries and summaries[-1]["state"] == "aborted"

    def test_status_cli(self, tmp_path, capsys):
        store_dir = str(tmp_path)
        assert cli_main(["status", "--cache-dir", store_dir]) == 1
        assert "no status.json" in capsys.readouterr().err

        run_sweep(TINY, tiny_tasks(), store_dir=store_dir, status_interval=0.0)
        assert cli_main(["status", "--cache-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert out.startswith("[complete] 1/1 cells")
        assert "(0 cache hits, 1 simulated)" in out

        assert cli_main(["status", "--cache-dir", store_dir, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_status(doc) == []

    def test_status_watch_tolerates_late_status(self, tmp_path, capsys):
        """Regression: ``status --watch`` pointed at a store whose
        status.json lands only after polling starts (or vanishes for a
        poll during an atomic replace) keeps watching and exits cleanly
        once the campaign shows a terminal state."""
        import threading

        from repro.obs.status import StatusPublisher, status_path

        store_dir = str(tmp_path)
        doc = StatusPublisher(tmp_path / "donor", total_cells=1).document()
        doc["state"] = "complete"

        timer = threading.Timer(
            0.15, lambda: status_path(store_dir).write_text(json.dumps(doc))
        )
        timer.start()
        try:
            assert cli_main(
                ["status", "--cache-dir", store_dir, "--watch", "--interval", "0.03"]
            ) == 0
        finally:
            timer.cancel()
        assert "[complete]" in capsys.readouterr().out

    def test_sweep_serve_status_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(
                ["sweep", "--gpus", "G17", "--pims", "P1", "--policies",
                 "FR-FCFS", "--vcs", "1", "--serve-status", "0"]
            )


# ---------------------------------------------------------------------------
# Stage profiler
# ---------------------------------------------------------------------------


class TestStageProfiler:
    def fingerprint(self, profile: bool, backend: str):
        from repro.perf import SCENARIOS, StageProfiler, build_scenario_system

        scenario = SCENARIOS["saturated_corun"]
        system = build_scenario_system(
            scenario, channels=2, sms=10, scale=0.05, backend=backend
        )
        profiler = StageProfiler(system) if profile else None
        result = system.run(max_cycles=8_000, until_all_complete_once=False)
        fingerprint = {
            "cycles": result.cycles,
            "issued": [
                (c.stats.mem_issued, c.stats.pim_issued) for c in system.controllers
            ],
            "switches": result.mode_switches,
            "replies": system.replies_sent,
        }
        return fingerprint, profiler

    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_bit_identical_and_ranked(self, backend):
        plain, _ = self.fingerprint(profile=False, backend=backend)
        profiled, profiler = self.fingerprint(profile=True, backend=backend)
        assert profiled == plain
        table = profiler.table()
        assert table, "profiler measured nothing"
        seconds = [row["seconds"] for row in table]
        assert seconds == sorted(seconds, reverse=True)
        assert all(
            {"stage", "seconds", "calls", "share"} <= set(row) for row in table
        )
        assert sum(row["share"] for row in table) == pytest.approx(1.0, abs=0.01)
        stages = {row["stage"] for row in table}
        # Bodies shared by both backends are always attributed.
        assert "l2_tag_mshr" in stages and "reply_delivery" in stages
        if backend == "soa":
            assert "warp_advance" in stages  # SoA fused body

    def test_uninstall_restores_bound_methods(self):
        from repro.perf import SCENARIOS, StageProfiler, build_scenario_system

        system = build_scenario_system(
            SCENARIOS["saturated_corun"], channels=2, sms=10, scale=0.05, backend="soa"
        )
        profiler = StageProfiler(system)
        assert profiler._installed
        wrapped = {id(getattr(h, a)) for h, a in profiler._installed}
        profiler.uninstall()
        assert profiler._installed == []
        for slice_ in system.l2_slices:
            assert "lookup" not in vars(slice_)
            assert id(slice_.lookup) not in wrapped

    def test_bench_payload_carries_profile(self):
        from repro.perf import run_engine_bench

        payload = run_engine_bench(
            scenario_names=["saturated_corun"],
            channels=2, sms=10, scale=0.05,
            stage_breakdown=False, stage_profile=True, backend="soa",
        )
        meta = payload["scenarios"]["saturated_corun"]["engine_meta"]["soa"]
        assert meta["stage_profile"]
        assert meta["stage_profile_wall_seconds"] > 0
        assert meta["stage_profile"][0]["seconds"] >= meta["stage_profile"][-1]["seconds"]
