"""Tests for the interconnect: queues, virtual channels, iSlip crossbar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.islip import ISlipArbiter
from repro.noc.queues import BoundedQueue
from repro.noc.vc import VCBuffer
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Mode, Request, RequestType


def mem_request(channel=0):
    req = Request(type=RequestType.MEM_LOAD, address=0)
    req.channel = channel
    return req


def pim_request(channel=0):
    req = Request(type=RequestType.PIM, address=0, pim_op=PIMOp(PIMOpKind.LOAD))
    req.channel = channel
    return req


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.push(i)
        assert [q.pop() for _ in range(3)] == [0, 1, 2]

    def test_capacity(self):
        q = BoundedQueue(2)
        assert q.try_push(1) and q.try_push(2)
        assert not q.try_push(3)
        assert q.rejects == 1
        with pytest.raises(OverflowError):
            q.push(3)

    def test_peek_and_len(self):
        q = BoundedQueue(4)
        assert q.peek() is None
        q.push("a")
        assert q.peek() == "a"
        assert len(q) == 1
        assert q.peak_occupancy == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedQueue(1).pop()

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)


class TestVCBufferVC1:
    def test_shared_queue(self):
        buf = VCBuffer(4, num_vcs=1)
        m, p = mem_request(), pim_request()
        assert buf.try_push(m) and buf.try_push(p)
        assert buf.pop_next() is m
        assert buf.pop_next() is p

    def test_hol_blocking_semantics(self):
        """In VC1 a PIM head blocks MEM requests behind it."""
        buf = VCBuffer(4, num_vcs=1)
        p, m = pim_request(), mem_request()
        buf.try_push(p)
        buf.try_push(m)
        assert buf.heads() == [p]  # only the PIM head is visible

    def test_capacity_shared(self):
        buf = VCBuffer(2, num_vcs=1)
        assert buf.try_push(pim_request())
        assert buf.try_push(pim_request())
        assert not buf.try_push(mem_request())  # PIM consumed all space


class TestVCBufferVC2:
    def test_separate_queues(self):
        buf = VCBuffer(4, num_vcs=2)
        p, m = pim_request(), mem_request()
        buf.try_push(p)
        buf.try_push(m)
        # Both heads visible: PIM cannot block MEM.
        assert set(buf.heads()) == {p, m}

    def test_half_capacity_each(self):
        buf = VCBuffer(4, num_vcs=2)
        assert buf.try_push(pim_request()) and buf.try_push(pim_request())
        assert not buf.try_push(pim_request())  # PIM VC full
        assert buf.try_push(mem_request())  # MEM VC unaffected

    def test_round_robin_pop(self):
        buf = VCBuffer(8, num_vcs=2)
        for _ in range(2):
            buf.try_push(mem_request())
            buf.try_push(pim_request())
        kinds = [buf.pop_next().is_pim for _ in range(4)]
        # Strict alternation between the two VCs.
        assert kinds in ([True, False, True, False], [False, True, False, True])

    def test_rotation_skips_empty_vc(self):
        buf = VCBuffer(8, num_vcs=2)
        buf.try_push(mem_request())
        buf.try_push(mem_request())
        assert not buf.pop_next().is_pim
        assert not buf.pop_next().is_pim
        assert buf.pop_next() is None

    def test_pop_matching_requires_head(self):
        buf = VCBuffer(8, num_vcs=2)
        first, second = mem_request(), mem_request()
        buf.try_push(first)
        buf.try_push(second)
        with pytest.raises(ValueError):
            buf.pop_matching(second)
        assert buf.pop_matching(first) is first

    def test_occupancy_by_mode(self):
        buf = VCBuffer(8, num_vcs=2)
        buf.try_push(pim_request())
        assert buf.occupancy(Mode.PIM) == 1
        assert buf.occupancy(Mode.MEM) == 0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            VCBuffer(4, num_vcs=3)
        with pytest.raises(ValueError):
            VCBuffer(1, num_vcs=2)


class TestISlip:
    def test_single_transfer(self):
        arbiter = ISlipArbiter(2, 2)
        inputs = [VCBuffer(4, 1) for _ in range(2)]
        outputs = [VCBuffer(4, 1) for _ in range(2)]
        req = mem_request(channel=1)
        inputs[0].try_push(req)
        moved = arbiter.step(inputs, outputs)
        assert moved == [(1, req)]
        assert outputs[1].heads() == [req]

    def test_one_grant_per_output(self):
        arbiter = ISlipArbiter(3, 1)
        inputs = [VCBuffer(4, 1) for _ in range(3)]
        outputs = [VCBuffer(8, 1)]
        for buf in inputs:
            buf.try_push(mem_request(channel=0))
        moved = arbiter.step(inputs, outputs)
        assert len(moved) == 1

    def test_round_robin_fairness(self):
        """Over many cycles every input gets equal service."""
        arbiter = ISlipArbiter(3, 1)
        inputs = [VCBuffer(64, 1) for _ in range(3)]
        outputs = [VCBuffer(1024, 1)]
        for cycle in range(60):
            for buf in inputs:
                buf.try_push(mem_request(channel=0))
            arbiter.step(inputs, outputs)
        # Count what reached the output per source via pushes.
        assert outputs[0].queue(Mode.MEM).pushes == 60
        # Each input drained at roughly 1/3 rate: remaining occupancies equal.
        remaining = [len(b) for b in inputs]
        assert max(remaining) - min(remaining) <= 1

    def test_backpressure_blocks_transfer(self):
        arbiter = ISlipArbiter(1, 1)
        inputs = [VCBuffer(4, 1)]
        outputs = [VCBuffer(1, 1)]
        outputs[0].try_push(mem_request(channel=0))  # fill the output
        inputs[0].try_push(mem_request(channel=0))
        assert arbiter.step(inputs, outputs) == []
        assert len(inputs[0]) == 1  # nothing lost

    def test_parallel_transfers_to_distinct_outputs(self):
        arbiter = ISlipArbiter(2, 2)
        inputs = [VCBuffer(4, 1) for _ in range(2)]
        outputs = [VCBuffer(4, 1) for _ in range(2)]
        inputs[0].try_push(mem_request(channel=0))
        inputs[1].try_push(mem_request(channel=1))
        moved = arbiter.step(inputs, outputs)
        assert len(moved) == 2

    def test_vc2_input_offers_both_heads(self):
        """With VC2 a blocked PIM head does not stop the MEM head."""
        arbiter = ISlipArbiter(1, 2)
        inputs = [VCBuffer(8, 2)]
        outputs = [VCBuffer(8, 2), VCBuffer(2, 2)]
        # PIM request to output 1, whose PIM VC is full.
        outputs[1].try_push(pim_request(channel=1))
        blocked_pim = pim_request(channel=1)
        mem = mem_request(channel=0)
        inputs[0].try_push(blocked_pim)
        inputs[0].try_push(mem)
        moved = arbiter.step(inputs, outputs)
        assert moved == [(0, mem)]

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ISlipArbiter(0, 1)
        arbiter = ISlipArbiter(2, 2)
        with pytest.raises(ValueError):
            arbiter.step([VCBuffer(2, 1)], [VCBuffer(2, 1), VCBuffer(2, 1)])

    def test_unknown_output_rejected(self):
        arbiter = ISlipArbiter(1, 1)
        inputs = [VCBuffer(2, 1)]
        outputs = [VCBuffer(2, 1)]
        inputs[0].try_push(mem_request(channel=7))
        with pytest.raises(ValueError):
            arbiter.step(inputs, outputs)


@settings(max_examples=50)
@given(
    pushes=st.lists(st.booleans(), min_size=1, max_size=40)  # True = PIM
)
def test_vc_buffer_conserves_requests(pushes):
    """Everything pushed into a VC buffer comes out exactly once, per VC in order."""
    buf = VCBuffer(64, num_vcs=2)
    pushed = []
    for is_pim in pushes:
        req = pim_request() if is_pim else mem_request()
        assert buf.try_push(req)
        pushed.append(req)
    popped = []
    while True:
        req = buf.pop_next()
        if req is None:
            break
        popped.append(req)
    assert sorted(r.id for r in popped) == sorted(r.id for r in pushed)
    # Per-type FIFO order is preserved.
    pim_order = [r.id for r in popped if r.is_pim]
    mem_order = [r.id for r in popped if not r.is_pim]
    assert pim_order == sorted(pim_order)
    assert mem_order == sorted(mem_order)
