"""Tests for system configuration presets and validation."""

import pytest

from repro.config import SystemConfig
from repro.dram.timings import DRAMTimings


class TestPaperPreset:
    def test_table1_values(self):
        config = SystemConfig.paper()
        assert config.num_sms == 80
        assert config.num_channels == 32
        assert config.banks_per_channel == 16
        assert config.mem_queue_size == 64
        assert config.pim_queue_size == 64
        assert config.noc_queue_size == 512
        assert config.pim_fus_per_channel == 8
        assert config.pim_rf_size == 16
        assert config.l2_size_bytes == 6 * 1024 * 1024

    def test_derived_values(self):
        config = SystemConfig.paper()
        assert config.banks_per_fu == 2
        assert config.rf_entries_per_bank == 8

    def test_address_map_consistent(self):
        config = SystemConfig.paper()
        assert config.mapper.num_channels == config.num_channels
        assert config.mapper.num_banks == config.banks_per_channel


class TestScaledPreset:
    def test_defaults(self):
        config = SystemConfig.scaled()
        assert config.num_channels == 8
        assert config.num_sms == 10
        assert config.noc_queue_size == 64
        # DRAM timings stay at paper values.
        assert config.timings == DRAMTimings()

    def test_custom_channels(self):
        config = SystemConfig.scaled(num_channels=4)
        assert config.mapper.num_channels == 4

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            SystemConfig.scaled(num_channels=6)
        with pytest.raises(ValueError):
            SystemConfig.scaled(banks_per_channel=12)


class TestVCHelpers:
    def test_with_vc2(self):
        config = SystemConfig.scaled()
        assert config.num_virtual_channels == 1
        assert config.with_vc2.num_virtual_channels == 2
        assert config.with_vc2.with_vc1.num_virtual_channels == 1

    def test_replace_preserves_other_fields(self):
        config = SystemConfig.scaled().replace(mem_queue_size=32)
        assert config.mem_queue_size == 32
        assert config.num_channels == 8


class TestValidation:
    def test_rejects_mismatched_address_map(self):
        with pytest.raises(ValueError):
            SystemConfig(num_channels=16)  # paper map encodes 32

    def test_rejects_bad_vc_count(self):
        with pytest.raises(ValueError):
            SystemConfig(num_virtual_channels=0)

    def test_rejects_tiny_noc_queue(self):
        with pytest.raises(ValueError):
            SystemConfig(noc_queue_size=1, num_virtual_channels=2)

    def test_rejects_uneven_fu_split(self):
        with pytest.raises(ValueError):
            SystemConfig(pim_fus_per_channel=5)

    def test_rejects_odd_rf(self):
        with pytest.raises(ValueError):
            SystemConfig(pim_rf_size=15)

    def test_rejects_no_sms(self):
        with pytest.raises(ValueError):
            SystemConfig(num_sms=0)
