"""Tests for the repro.obs telemetry subsystem.

Three claims are covered:

* **Math** — LogHistogram bucket indexing/bounds are consistent and
  monotone, percentiles are sane, merge aggregates; the EventRing evicts
  oldest-first with accounting.
* **Zero observational cost** — enabling telemetry must not change the
  simulation: fingerprints (in the style of test_scheduler_equivalence)
  are bit-identical with telemetry on vs off, with fast-forwarding on and
  off; and the six per-hop stages telescope to ``Request.total_latency``
  exactly (mean gap 0).
* **Surface** — the Chrome trace-event export passes its own schema
  validator and contains mode slices, CAP-bypass instants, and queue
  counters; the CLI ``trace`` subcommand writes both artifacts.
"""

import json
import random

import pytest

from repro.cli import main as cli_main
from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.obs import (
    EventRing,
    HOP_STAGES,
    LogHistogram,
    Telemetry,
    build_trace,
    validate_trace,
)
from repro.perf.counters import EngineCounters
from repro.request import reset_request_ids
from repro.sim.system import GPUSystem
from repro.workloads import get_gpu_kernel, get_pim_kernel


# ---------------------------------------------------------------------------
# LogHistogram
# ---------------------------------------------------------------------------


class TestLogHistogram:
    def test_bounds_contain_value(self):
        hist = LogHistogram(sub_bits=3)
        values = list(range(0, 200)) + [2**k + d for k in range(4, 30) for d in (0, 1, 7)]
        for value in values:
            lower, upper = hist.bucket_bounds(hist.bucket_index(value))
            assert lower <= value < upper, value

    def test_exact_below_two_sub(self):
        hist = LogHistogram(sub_bits=3)
        # Values below 2 * 2^sub_bits land in width-1 buckets.
        for value in range(16):
            assert hist.bucket_bounds(hist.bucket_index(value)) == (value, value + 1)

    def test_index_monotone(self):
        hist = LogHistogram(sub_bits=3)
        indices = [hist.bucket_index(v) for v in range(10_000)]
        assert indices == sorted(indices)

    def test_relative_error_bound(self):
        hist = LogHistogram(sub_bits=3)
        for value in (100, 1_000, 50_000, 1_000_000):
            lower, upper = hist.bucket_bounds(hist.bucket_index(value))
            assert (upper - lower) / lower <= 1 / 8 + 1e-9

    def test_stats_and_percentiles(self):
        hist = LogHistogram()
        rng = random.Random(7)
        values = [rng.randrange(0, 100_000) for _ in range(5_000)]
        for value in values:
            hist.add(value)
        assert hist.total == len(values)
        assert hist.min_value == min(values)
        assert hist.max_value == max(values)
        assert hist.mean == pytest.approx(sum(values) / len(values))
        p50, p95, p99 = hist.percentile(0.5), hist.percentile(0.95), hist.percentile(0.99)
        assert hist.min_value <= p50 <= p95 <= p99 <= hist.max_value
        values.sort()
        # Log-bucketed percentiles are within one octave sub-bucket (12.5%).
        assert p50 == pytest.approx(values[len(values) // 2], rel=0.13)
        assert hist.percentile(1.0) == hist.max_value

    def test_exact_region_percentiles(self):
        hist = LogHistogram()
        for value in range(8):  # all in the exact region
            hist.add(value)
        assert hist.percentile(1.0) == 7.0

    def test_merge(self):
        a, b, both = LogHistogram(), LogHistogram(), LogHistogram()
        for value in (3, 70, 900):
            a.add(value)
            both.add(value)
        for value in (1, 40_000):
            b.add(value)
            both.add(value)
        a.merge(b)
        assert a.counts == both.counts
        assert a.to_dict() == both.to_dict()

    def test_merge_rejects_layout_mismatch(self):
        with pytest.raises(ValueError):
            LogHistogram(sub_bits=3).merge(LogHistogram(sub_bits=4))

    def test_empty_and_invalid(self):
        hist = LogHistogram()
        assert hist.percentile(0.5) == 0.0
        assert hist.to_dict()["count"] == 0
        with pytest.raises(ValueError):
            hist.add(-1)
        with pytest.raises(ValueError):
            hist.percentile(0.0)


# ---------------------------------------------------------------------------
# EventRing
# ---------------------------------------------------------------------------


class TestEventRing:
    def test_eviction_keeps_newest(self):
        ring = EventRing(capacity=4)
        for cycle in range(10):
            ring.emit(cycle, "tick", channel=0, n=cycle)
        assert len(ring) == 4
        assert ring.evicted == 6
        assert [e.cycle for e in ring] == [6, 7, 8, 9]

    def test_by_kind_and_data(self):
        ring = EventRing()
        ring.emit(1, "a")
        ring.emit(2, "b", channel=3, x=1)
        ring.emit(3, "a")
        assert ring.by_kind() == {"a": 2, "b": 1}
        event = [e for e in ring if e.kind == "b"][0]
        assert event.to_dict() == {"cycle": 2, "kind": "b", "channel": 3, "x": 1}

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)

    def test_overflow_preserves_emission_order_across_kinds(self):
        """Wrap-around keeps interleaved kinds in emission order, and the
        eviction counter tracks exactly the overflow past capacity."""
        ring = EventRing(capacity=5)
        emitted = []
        for i in range(12):
            kind = ("refresh", "cap_bypass", "noc_reject")[i % 3]
            ring.emit(i, kind, channel=i % 2)
            emitted.append((i, kind))
        assert ring.evicted == 12 - 5
        survivors = [(e.cycle, e.kind) for e in ring]
        assert survivors == emitted[-5:]
        # Filling exactly to capacity evicts nothing.
        exact = EventRing(capacity=3)
        for i in range(3):
            exact.emit(i, "refresh")
        assert exact.evicted == 0 and len(exact) == 3


# ---------------------------------------------------------------------------
# Observational transparency and the hop identity
# ---------------------------------------------------------------------------


def run_corun(telemetry: bool, fast_forward: bool):
    """F3FS co-run in the test_scheduler_equivalence fingerprint style."""
    reset_request_ids()
    config = SystemConfig.scaled(num_channels=2, num_sms=4)
    system = GPUSystem(
        config, PolicySpec("F3FS"), seed=3, scale=0.06, fast_forward=fast_forward
    )
    if telemetry:
        system.enable_telemetry(timeline_interval=100)
    system.add_kernel(get_gpu_kernel("G17"), num_sms=3, loop=True)
    system.add_kernel(get_pim_kernel("P1"), num_sms=1, loop=True)
    result = system.run(max_cycles=12_000, until_all_complete_once=False)
    fingerprint = {
        "cycles": result.cycles,
        "issued": [(c.stats.mem_issued, c.stats.pim_issued) for c in system.controllers],
        "arrivals": [(c.stats.mem_arrivals, c.stats.pim_arrivals) for c in system.controllers],
        "injected": sorted(system._injected.items()),
        "switches": result.mode_switches,
        "hit_rate": result.row_buffer_hit_rate,
        "replies": system.replies_sent,
    }
    return system, result, fingerprint


class TestTransparency:
    @pytest.mark.parametrize("fast_forward", [True, False], ids=["ff", "noff"])
    def test_fingerprint_identical_on_off(self, fast_forward):
        _, _, on = run_corun(telemetry=True, fast_forward=fast_forward)
        _, _, off = run_corun(telemetry=False, fast_forward=fast_forward)
        assert on == off

    def test_hop_identity_exact(self):
        system, result, _ = run_corun(telemetry=True, fast_forward=True)
        identity = system.telemetry.summary()["hop_identity"]
        assert identity["requests"] > 0
        assert identity["mean_abs_gap"] == 0.0
        assert identity["mean_total_latency"] == identity["mean_hop_sum"]

    def test_summary_shape_and_result_plumbing(self):
        system, result, _ = run_corun(telemetry=True, fast_forward=True)
        summary = result.telemetry
        assert summary is not None
        for mode in ("mem", "pim"):
            for stage in HOP_STAGES + ("total",):
                entry = summary["stages"][mode][stage]
                assert entry["count"] > 0
                assert entry["min"] <= entry["p50"] <= entry["p95"] <= entry["p99"]
        # Per-hop means telescope to the total mean per (mode, channel) too.
        for mode, channels in summary["per_channel"].items():
            for stats in channels.values():
                hop_mean = sum(stats[s]["mean"] for s in HOP_STAGES)
                assert hop_mean == pytest.approx(stats["total"]["mean"], abs=0.1)
        events = summary["events"]
        assert events["by_kind"]["mode_switch_begin"] == events["by_kind"]["mode_switch_end"]
        assert events["by_kind"]["cap_bypass"] > 0

    def test_disabled_by_default(self):
        system, result, _ = run_corun(telemetry=False, fast_forward=True)
        assert system.telemetry is None
        assert result.telemetry is None

    def test_enable_idempotent(self):
        config = SystemConfig.scaled(num_channels=2, num_sms=2)
        system = GPUSystem(config, PolicySpec("F3FS"))
        telemetry = system.enable_telemetry()
        assert system.enable_telemetry() is telemetry
        assert all(c.telemetry is telemetry for c in system.controllers)


class TestSoAMidRunFallback:
    """Enabling telemetry *mid-run* on the SoA backend drains the handle
    rings back into the object queues (``enable_telemetry``'s fallback
    path) — the simulation must not notice."""

    def run_soa(self, enable_at=None, max_cycles=10_000):
        from repro.engine_soa import create_system

        reset_request_ids()
        config = SystemConfig.scaled(num_channels=2, num_sms=4)
        system = create_system(
            config, PolicySpec("F3FS"), backend="soa", seed=3, scale=0.06,
            fast_forward=True,
        )
        system.add_kernel(get_gpu_kernel("G17"), num_sms=3, loop=True)
        system.add_kernel(get_pim_kernel("P1"), num_sms=1, loop=True)
        # Drive the run() loop by hand so telemetry can arm mid-flight.
        for run in system.runs:
            system._launch(run)
        rings_before_enable = None
        while system.cycle < max_cycles:
            if enable_at is not None and system.cycle >= enable_at:
                rings_before_enable = system._rings_on
                system.enable_telemetry()
                enable_at = None
            system.step()
            if system._quiescent():
                system._fast_forward_clock(max_cycles)
        for controller in system.controllers:
            controller.finalize(system.cycle)
        result = system._collect_results()
        fingerprint = {
            "cycles": result.cycles,
            "issued": [
                (c.stats.mem_issued, c.stats.pim_issued)
                for c in system.controllers
            ],
            "arrivals": [
                (c.stats.mem_arrivals, c.stats.pim_arrivals)
                for c in system.controllers
            ],
            "switches": result.mode_switches,
            "hit_rate": result.row_buffer_hit_rate,
            "replies": system.replies_sent,
        }
        return system, result, fingerprint, rings_before_enable

    def test_midrun_enable_drains_rings_bit_identically(self):
        _, _, unarmed, _ = self.run_soa(enable_at=None)
        system, result, armed, rings_before = self.run_soa(enable_at=3_000)
        # The premise: the hot path really was on the ring representation
        # before telemetry armed, and fell back off it.
        assert rings_before is True
        assert system._rings_on is False
        assert armed == unarmed
        # ...and the late-armed telemetry still collected real data.
        assert result.telemetry is not None
        assert system.telemetry.folded_requests > 0
        assert result.telemetry["events"]["by_kind"]

    def test_midrun_enable_carries_queue_occupancy_over(self):
        system, _, _, _ = self.run_soa(enable_at=3_000)
        # Ring push/peak accounting migrated into the object queues.
        assert any(q.pushes > 0 for q in system._dram_q0)


class TestTelemetryUnit:
    def test_record_completion_skips_incomplete_chains(self):
        from repro.request import Request, RequestType

        telemetry = Telemetry()
        req = Request(type=RequestType.MEM_LOAD, address=0, kernel_id=0)
        req.cycle_created = 5  # no noc/l2/mc/issue timestamps
        telemetry.record_completion(req, cycle=100)
        assert telemetry.folded_requests == 0


# ---------------------------------------------------------------------------
# Trace export
# ---------------------------------------------------------------------------


class TestTraceExport:
    def test_build_requires_telemetry(self):
        system, _, _ = run_corun(telemetry=False, fast_forward=True)
        with pytest.raises(ValueError):
            build_trace(system)

    def test_trace_valid_and_populated(self):
        system, _, _ = run_corun(telemetry=True, fast_forward=True)
        doc = build_trace(system)
        assert validate_trace(doc) == []
        events = doc["traceEvents"]
        mode_slices = [e for e in events if e.get("cat") == "mode" and e["ph"] == "X"]
        assert {e["name"] for e in mode_slices} >= {"MEM", "PIM"}
        assert any(e["name"].startswith("switch->") for e in mode_slices)
        assert any(e["ph"] == "i" and e["name"] == "cap_bypass" for e in events)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and all(set(e["args"]) == {"mem_q", "pim_q", "noc"} for e in counters)
        kernel_slices = [e for e in events if e.get("cat") == "kernel"]
        assert kernel_slices
        # Slices stay within the run and on valid tracks.
        num_channels = system.config.num_channels
        for e in mode_slices:
            assert 0 <= e["tid"] < num_channels
            assert e["ts"] + e["dur"] <= system.cycle

    def test_validator_rejects_malformed(self):
        assert validate_trace({"nope": 1})
        bad = {
            "traceEvents": [
                {"name": "x", "ph": "Z", "pid": 0, "tid": 0, "ts": 1},
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -5, "dur": 1},
                {"name": "x", "ph": "C", "pid": 0, "tid": 0, "ts": 1, "args": {}},
                {"name": "x", "ph": "i", "pid": 0, "tid": 0, "ts": 1, "s": "q"},
            ]
        }
        assert len(validate_trace(bad)) == 4

    def test_cli_trace_smoke(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = cli_main(
            [
                "trace",
                "--scenario",
                "mode_timeline",
                "--policy",
                "f3fs",
                "--out",
                str(out),
                "--max-cycles",
                "6000",
                "--channels",
                "2",
                "--scale",
                "0.06",
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_trace(doc) == []
        stats = json.loads((tmp_path / "trace_stats.json").read_text())
        assert stats["hop_identity"]["mean_abs_gap"] == 0.0
        # The stats surface names the engine that produced the trace and
        # its per-backend bookkeeping (PR 7's engine_meta convention).
        backend = stats["backend"]
        assert backend in ("object", "soa")
        meta = stats["engine_meta"][backend]
        assert meta["steps_executed"] > 0
        assert meta["cycles_skipped"] >= 0
        assert "hop identity" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Report/figure consumers
# ---------------------------------------------------------------------------


class TestConsumers:
    def test_latency_breakdown_rows_and_section(self):
        from repro.experiments import latency_breakdown_rows, telemetry_section

        system, result, _ = run_corun(telemetry=True, fast_forward=True)
        rows = latency_breakdown_rows(result.telemetry)
        assert {r["mode"] for r in rows} == {"mem", "pim"}
        assert all({"stage", "count", "mean", "p50", "p95", "p99"} <= set(r) for r in rows)
        section = telemetry_section(result)
        assert section.startswith("## ")
        assert "| mode |" in section and "mc_blocked" in section
        with pytest.raises(ValueError):
            telemetry_section(object())


# ---------------------------------------------------------------------------
# EngineCounters aggregation (parallel sweep support)
# ---------------------------------------------------------------------------


class TestEngineCounters:
    def test_reset_and_merge(self):
        a = EngineCounters()
        a.add("sm", 0.5)
        a.add("sm", 0.25)
        a.add("dram", 1.0)
        b = EngineCounters()
        b.add("sm", 1.0)
        b.merge(a)
        assert b.seconds["sm"] == pytest.approx(1.75)
        assert b.calls == {"sm": 3, "dram": 1}
        snapshot = a.snapshot()
        a.reset()
        assert a.seconds == {} and a.calls == {}
        a.merge_snapshot(snapshot)
        assert a.seconds["dram"] == pytest.approx(1.0)
        assert a.calls["sm"] == 2

    def test_runner_shares_counters(self):
        from repro.experiments import ExperimentScale, Runner

        scale = ExperimentScale(
            num_channels=2, gpu_sms_full=3, gpu_sms_corun=2, pim_sms=1,
            workload_scale=0.05, max_cycles=200_000,
        )
        runner = Runner(scale, perf_counters=True)
        runner.pim_standalone("P1")
        assert runner.perf.total_seconds > 0
        assert runner.perf.calls  # stage counters populated

    def test_grid_parallel_collects_perf(self):
        from repro.experiments import ExperimentScale, make_tasks, run_grid_parallel

        scale = ExperimentScale(
            num_channels=2, gpu_sms_full=3, gpu_sms_corun=2, pim_sms=1,
            workload_scale=0.05, max_cycles=400_000,
        )
        tasks = make_tasks(["G17"], ["P1"], [PolicySpec("FR-FCFS")], vc_configs=(1,))
        outcomes, perf = run_grid_parallel(
            scale, tasks, max_workers=1, collect_perf=True
        )
        assert len(outcomes) == 1
        assert perf.total_seconds > 0
        # Back-compat: the default return shape is a bare list.
        plain = run_grid_parallel(scale, tasks, max_workers=1)
        assert isinstance(plain, list) and len(plain) == 1

    def test_grid_parallel_merges_perf_across_workers(self):
        """collect_perf across real worker processes: every worker's stage
        counters come home and merge into one EngineCounters."""
        from repro.experiments import ExperimentScale, make_tasks, run_grid_parallel

        scale = ExperimentScale(
            num_channels=2, gpu_sms_full=3, gpu_sms_corun=2, pim_sms=1,
            workload_scale=0.05, max_cycles=400_000,
        )
        tasks = make_tasks(
            ["G17"], ["P1"], [PolicySpec("FR-FCFS")], vc_configs=(1, 2)
        )
        outcomes, merged = run_grid_parallel(
            scale, tasks, max_workers=2, collect_perf=True
        )
        assert len(outcomes) == 2
        assert merged.total_seconds > 0
        # The merged counters cover both cells: at least as many stage
        # calls as either cell alone produces serially.
        serial_outcomes, serial = run_grid_parallel(
            scale, tasks[:1], max_workers=1, collect_perf=True
        )
        assert len(serial_outcomes) == 1
        for stage, calls in serial.calls.items():
            assert merged.calls.get(stage, 0) >= calls
