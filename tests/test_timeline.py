"""Tests for the timeline sampler."""

import pytest

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.metrics.timeline import TimelineSampler
from repro.sim.system import GPUSystem
from repro.workloads.synthetic import GPUKernelProfile, PIMStreamKernel


def run_with_timeline(policy="F3FS", interval=50):
    config = SystemConfig.scaled(num_channels=4, num_sms=4)
    system = GPUSystem(config, PolicySpec(policy))
    timeline = system.attach_timeline(interval=interval)
    system.add_kernel(
        GPUKernelProfile(name="tl-gpu", accesses_per_warp=96, compute_per_phase=5),
        num_sms=2,
        loop=True,
    )
    system.add_kernel(PIMStreamKernel(name="tl-pim", elements_per_warp=96), num_sms=1, loop=True)
    result = system.run(max_cycles=300_000)
    return system, timeline, result


class TestSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimelineSampler(interval=0)

    def test_samples_recorded_on_cadence(self):
        system, timeline, result = run_with_timeline(interval=50)
        assert len(timeline.samples) >= result.cycles // 50
        cycles = [s.cycle for s in timeline.samples]
        assert all(c % 50 == 0 for c in cycles)
        assert cycles == sorted(cycles)

    def test_mode_share_sums_to_one(self):
        _, timeline, _ = run_with_timeline()
        share = timeline.mode_share()
        assert sum(share.values()) == pytest.approx(1.0)
        # Both modes appear during MEM/PIM co-execution.
        assert share["mem"] > 0
        assert share["pim"] > 0

    def test_occupancy_series(self):
        _, timeline, _ = run_with_timeline()
        series = timeline.occupancy_series("pim")
        assert len(series) == len(timeline.samples)
        assert max(series) > 0  # PIM queue was used
        with pytest.raises(ValueError):
            timeline.occupancy_series("bogus")

    def test_switch_points_detected(self):
        _, timeline, _ = run_with_timeline(interval=10)
        assert len(timeline.switch_points(channel=0)) > 0

    def test_render_strip(self):
        _, timeline, _ = run_with_timeline(interval=10)
        strip = timeline.render_strip(channel=0, width=40)
        assert 0 < len(strip) <= 40
        assert set(strip) <= {"M", "P", "|"}

    def test_empty_sampler_renders_empty(self):
        sampler = TimelineSampler()
        assert sampler.render_strip() == ""
        assert sampler.mode_share()["mem"] == 0.0
