"""Tests for the timeline sampler."""

import pytest

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.metrics.timeline import TimelineSampler
from repro.sim.system import GPUSystem
from repro.workloads.synthetic import GPUKernelProfile, PIMStreamKernel


def run_with_timeline(policy="F3FS", interval=50):
    config = SystemConfig.scaled(num_channels=4, num_sms=4)
    system = GPUSystem(config, PolicySpec(policy))
    timeline = system.attach_timeline(interval=interval)
    system.add_kernel(
        GPUKernelProfile(name="tl-gpu", accesses_per_warp=96, compute_per_phase=5),
        num_sms=2,
        loop=True,
    )
    system.add_kernel(PIMStreamKernel(name="tl-pim", elements_per_warp=96), num_sms=1, loop=True)
    result = system.run(max_cycles=300_000)
    return system, timeline, result


class TestSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimelineSampler(interval=0)

    def test_samples_recorded_on_cadence(self):
        system, timeline, result = run_with_timeline(interval=50)
        assert len(timeline.samples) >= result.cycles // 50
        cycles = [s.cycle for s in timeline.samples]
        assert all(c % 50 == 0 for c in cycles)
        assert cycles == sorted(cycles)

    def test_mode_share_sums_to_one(self):
        _, timeline, _ = run_with_timeline()
        share = timeline.mode_share()
        assert sum(share.values()) == pytest.approx(1.0)
        # Both modes appear during MEM/PIM co-execution.
        assert share["mem"] > 0
        assert share["pim"] > 0

    def test_occupancy_series(self):
        _, timeline, _ = run_with_timeline()
        series = timeline.occupancy_series("pim")
        assert len(series) == len(timeline.samples)
        assert max(series) > 0  # PIM queue was used
        with pytest.raises(ValueError):
            timeline.occupancy_series("bogus")

    def test_switch_points_detected(self):
        _, timeline, _ = run_with_timeline(interval=10)
        assert len(timeline.switch_points(channel=0)) > 0

    def test_render_strip(self):
        _, timeline, _ = run_with_timeline(interval=10)
        strip = timeline.render_strip(channel=0, width=40)
        assert 0 < len(strip) <= 40
        assert set(strip) <= {"M", "P", "|"}

    def test_empty_sampler_renders_empty(self):
        sampler = TimelineSampler()
        assert sampler.render_strip() == ""
        assert sampler.mode_share()["mem"] == 0.0

    def test_unknown_modes_bucketed_not_crashing(self):
        sampler = TimelineSampler()
        _, timeline, _ = run_with_timeline(interval=50)
        sampler.samples = list(timeline.samples)
        # Corrupt one sample with a mode name the sampler never emitted.
        first = sampler.samples[0]
        sampler.samples[0] = first.__class__(
            cycle=first.cycle,
            modes=["weird"] * len(first.modes),
            mem_queue_occupancy=first.mem_queue_occupancy,
            pim_queue_occupancy=first.pim_queue_occupancy,
            noc_occupancy=first.noc_occupancy,
        )
        share = sampler.mode_share()
        assert share.get("other", 0) > 0
        assert sum(share.values()) == pytest.approx(1.0)
        strip = sampler.render_strip(channel=0, width=len(sampler.samples))
        assert "?" in strip

    def test_to_rows_matches_samples(self):
        _, timeline, _ = run_with_timeline(interval=50)
        rows = timeline.to_rows()
        assert len(rows) == len(timeline.samples)
        for row, sample in zip(rows, timeline.samples):
            assert row["cycle"] == sample.cycle
            assert row["modes"] == list(sample.modes)
            assert row["mem_queue"] == list(sample.mem_queue_occupancy)
            assert row["pim_queue"] == list(sample.pim_queue_occupancy)
            assert row["noc"] == list(sample.noc_occupancy)
