"""Tests for the markdown report generator."""

from repro.cli import main
from repro.experiments import ExperimentScale, Runner, generate_report

TINY = ExperimentScale(
    num_channels=4,
    gpu_sms_full=4,
    gpu_sms_corun=3,
    pim_sms=1,
    workload_scale=0.05,
    starvation_factor=10,
)


class TestGenerateReport:
    def test_report_structure(self):
        runner = Runner(TINY)
        text = generate_report(
            runner,
            gpu_subset=["G17"],
            pim_subset=["P2"],
            policies=["FR-FCFS", "F3FS"],
            title="Test report",
        )
        assert text.startswith("# Test report")
        for heading in (
            "## Characterization (Figure 4)",
            "## MEM arrival rate at the MC (Figure 6)",
            "## Fairness and throughput (Figure 8)",
            "## Mode switches and overheads (Figure 10)",
            "## Collaborative LLM speedup (Figure 11)",
        ):
            assert heading in text
        # Markdown tables are present and mention the policies.
        assert "| config | policy |" in text
        assert "F3FS" in text
        assert "Ideal" in text

    def test_cli_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--out", str(out),
                "--gpus", "G17",
                "--pims", "P2",
                "--policies", "FR-FCFS", "F3FS",
                "--scale", "0.05",
                "--channels", "4",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "# Reproduction report" in out.read_text()
