"""Tests for the mode-switch logic area model (Section VII-A)."""

import pytest

from repro.core.area import (
    PAPER_F3FS,
    PAPER_FRFCFS,
    AreaEstimate,
    f3fs_switch_area,
    frfcfs_switch_area,
    relative_error,
)


class TestCalibration:
    def test_frfcfs_matches_paper_synthesis(self):
        estimate = frfcfs_switch_area(num_banks=16)
        assert relative_error(estimate, PAPER_FRFCFS) < 0.05

    def test_f3fs_matches_paper_synthesis(self):
        estimate = f3fs_switch_area()
        assert relative_error(estimate, PAPER_F3FS) < 0.05

    def test_qualitative_tradeoff(self):
        """F3FS: fewer LUTs (no per-bank tracking), more FFs (counters)."""
        frfcfs = frfcfs_switch_area(num_banks=16)
        f3fs = f3fs_switch_area()
        assert f3fs.luts < frfcfs.luts
        assert f3fs.flip_flops > frfcfs.flip_flops


class TestScaling:
    def test_frfcfs_grows_with_banks(self):
        areas = [frfcfs_switch_area(num_banks=n).luts for n in (4, 8, 16, 32)]
        assert areas == sorted(areas)
        assert areas[-1] > areas[0]

    def test_frfcfs_ff_growth_is_per_bank(self):
        a16 = frfcfs_switch_area(num_banks=16).flip_flops
        a32 = frfcfs_switch_area(num_banks=32).flip_flops
        assert a32 - a16 == 2 * 16  # two bits per extra bank

    def test_f3fs_grows_with_cap_width(self):
        small = f3fs_switch_area(cap_bits=6)
        large = f3fs_switch_area(cap_bits=12)
        assert large.flip_flops > small.flip_flops
        assert large.luts > small.luts

    def test_f3fs_independent_of_banks(self):
        """The key scalability argument: no per-bank state in F3FS."""
        assert f3fs_switch_area() == f3fs_switch_area()


class TestValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            frfcfs_switch_area(num_banks=0)
        with pytest.raises(ValueError):
            f3fs_switch_area(cap_bits=0)

    def test_estimate_addition(self):
        total = AreaEstimate(10, 5) + AreaEstimate(1, 2)
        assert total == AreaEstimate(11, 7)

    def test_relative_error_zero_for_exact(self):
        assert relative_error(PAPER_F3FS, PAPER_F3FS) == 0.0
