"""Unit and property tests for the bank/channel timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import AccessKind, Bank
from repro.dram.channel import Channel, merge_intervals
from repro.dram.timings import DRAMTimings
from repro.pim.isa import PIM_LOAD
from repro.request import Request, RequestType


def make_channel(num_banks=4):
    return Channel(0, num_banks, DRAMTimings())


def mem_request(bank=0, row=0, column=0, write=False, channel=0, kernel_id=0):
    req = Request(
        type=RequestType.MEM_STORE if write else RequestType.MEM_LOAD,
        address=0,
        kernel_id=kernel_id,
    )
    req.channel, req.bank, req.row, req.column = channel, bank, row, column
    return req


class TestTimings:
    def test_paper_defaults(self):
        t = DRAMTimings()
        assert (t.tRCD, t.tRP, t.tRAS, t.tCL) == (12, 12, 28, 12)
        assert t.row_conflict_penalty == 24

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DRAMTimings(tRCD=0)

    def test_rejects_tras_below_trcd(self):
        with pytest.raises(ValueError):
            DRAMTimings(tRAS=5, tRCD=12)


class TestBank:
    def setup_method(self):
        self.t = DRAMTimings()
        self.bank = Bank(0, self.t)

    def test_initial_state_is_miss(self):
        assert self.bank.classify(5) is AccessKind.MISS
        assert self.bank.open_row is None
        assert self.bank.can_accept(0)

    def test_miss_timing(self):
        kind, first, col, completion, act = self.bank.schedule(0, 7, False, 0, 0)
        assert kind is AccessKind.MISS
        assert act == 0
        assert col == self.t.tRCD
        assert completion == self.t.tRCD + self.t.tCL + self.t.burst_length
        assert self.bank.open_row == 7

    def test_hit_timing(self):
        self.bank.schedule(0, 7, False, 0, 0)
        accept = self.bank.state.accept_at
        kind, first, col, completion, act = self.bank.schedule(accept, 7, False, 0, 0)
        assert kind is AccessKind.HIT
        assert act is None
        # Hits pipeline at the tCCDl cadence.
        assert col == self.t.tRCD + self.t.tCCDl

    def test_conflict_timing_respects_tras(self):
        self.bank.schedule(0, 7, False, 0, 0)
        accept = self.bank.state.accept_at
        kind, first, col, completion, act = self.bank.schedule(accept, 9, False, 0, 0)
        assert kind is AccessKind.CONFLICT
        # PRE cannot happen before tRAS after the ACT at cycle 0.
        assert first >= self.t.tRAS
        assert act == first + self.t.tRP
        assert col == act + self.t.tRCD
        assert self.bank.open_row == 9

    def test_write_recovery_delays_precharge(self):
        self.bank.schedule(0, 7, True, 0, 0)  # write
        pre_ready_after_write = self.bank.state.pre_ready
        t = self.t
        col = t.tRCD
        assert pre_ready_after_write >= col + t.tWL + t.burst_length + t.tWR

    def test_cannot_accept_before_column_slot(self):
        self.bank.schedule(0, 7, False, 0, 0)
        assert not self.bank.can_accept(0)
        assert self.bank.can_accept(self.bank.state.accept_at)


class TestChannel:
    def test_issue_and_complete(self):
        ch = make_channel()
        req = mem_request(bank=1, row=3)
        completion = ch.issue_mem(req, 0)
        assert ch.mem_in_flight() == 1
        assert ch.pop_completed(completion - 1) == []
        done = ch.pop_completed(completion)
        assert done == [req]
        assert req.cycle_completed == completion
        assert ch.mem_in_flight() == 0

    def test_bank_parallelism_overlaps(self):
        ch = make_channel()
        c0 = ch.issue_mem(mem_request(bank=0, row=1), 0)
        c1 = ch.issue_mem(mem_request(bank=1, row=1), 1)
        # Both misses overlap almost fully thanks to bank-level parallelism.
        assert c1 < c0 + ch.timings.tRCD
        assert ch.bank_level_parallelism() > 1.5

    def test_data_bus_serializes_column_commands(self):
        ch = make_channel()
        reqs = [mem_request(bank=b, row=0) for b in range(4)]
        completions = []
        cycle = 0
        for r in reqs:
            while not ch.bank_can_accept(r.bank, cycle):
                cycle += 1
            completions.append(ch.issue_mem(r, cycle))
            cycle += 1
        # Completions must be spaced by at least the burst length.
        spaced = sorted(completions)
        for a, b in zip(spaced, spaced[1:]):
            assert b - a >= ch.timings.burst_length

    def test_row_hit_stream_faster_than_conflict_stream(self):
        t = DRAMTimings()
        hits = make_channel(1)
        cycle = 0
        for i in range(16):
            while not hits.bank_can_accept(0, cycle):
                cycle += 1
            last_hit = hits.issue_mem(mem_request(bank=0, row=0, column=i), cycle)
        conflicts = make_channel(1)
        cycle = 0
        for i in range(16):
            while not conflicts.bank_can_accept(0, cycle):
                cycle += 1
            last_conflict = conflicts.issue_mem(mem_request(bank=0, row=i), cycle)
        assert last_hit < last_conflict / 3
        assert hits.stats.mem_hits == 15
        assert conflicts.stats.mem_conflicts == 15

    def test_stats_kernel_outcomes(self):
        ch = make_channel()
        ch.issue_mem(mem_request(bank=0, row=0, kernel_id=7), 0)
        cycle = ch.banks[0].state.accept_at
        ch.issue_mem(mem_request(bank=0, row=0, column=1, kernel_id=7), cycle)
        hits, misses, conflicts = ch.stats.kernel_outcomes[7]
        assert (hits, misses, conflicts) == (1, 1, 0)
        assert 0 < ch.stats.row_buffer_hit_rate < 1

    def test_issue_to_busy_bank_raises(self):
        ch = make_channel()
        ch.issue_mem(mem_request(bank=0, row=0), 0)
        with pytest.raises(RuntimeError):
            ch.issue_mem(mem_request(bank=0, row=0), 0)

    def test_reset(self):
        ch = make_channel()
        ch.issue_mem(mem_request(bank=0, row=0), 0)
        ch.reset()
        assert ch.mem_in_flight() == 0
        assert ch.stats.mem_accesses == 0
        assert ch.banks[0].open_row is None


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == 0

    def test_disjoint(self):
        assert merge_intervals([(0, 2), (5, 7)]) == 4

    def test_overlapping(self):
        assert merge_intervals([(0, 5), (3, 8), (8, 10)]) == 10

    def test_out_of_order_and_degenerate(self):
        assert merge_intervals([(5, 7), (0, 2), (3, 3)]) == 4

    @settings(max_examples=100)
    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100)).map(
                lambda p: (min(p), max(p))
            ),
            max_size=20,
        )
    )
    def test_matches_brute_force(self, intervals):
        expected = len({c for s, e in intervals for c in range(s, e)})
        assert merge_intervals(intervals) == expected


@settings(max_examples=50, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(
            st.integers(0, 3),  # bank
            st.integers(0, 4),  # row
            st.booleans(),  # write
        ),
        min_size=1,
        max_size=40,
    )
)
def test_channel_timing_invariants(accesses):
    """Random request streams never violate basic timing invariants."""
    ch = make_channel()
    completions = []
    cycle = 0
    for bank, row, write in accesses:
        while not ch.bank_can_accept(bank, cycle):
            cycle += 1
        completion = ch.issue_mem(mem_request(bank=bank, row=row, write=write), cycle)
        assert completion > cycle  # service takes time
        completions.append(completion)
        cycle += 1
    # Total accesses are conserved in the stats.
    assert ch.stats.mem_accesses == len(accesses)
    # Drain completes at the max completion.
    assert ch.drain_complete_cycle() == max(completions)
    ch.pop_completed(max(completions))
    assert ch.mem_in_flight() == 0
